let src = Logs.Src.create "xorp.rtrmgr" ~doc:"Router Manager"

module Log = (val Logs.src_log src : Logs.LOG)

type component = [ `Fea | `Rib | `Bgp | `Rip | `Ospf ]

type t = {
  loop : Eventloop.t;
  net : Netsim.t;
  fndr : Finder.t;
  prof : Profiler.t option;
  tel_r : Xrl_router.t;
  (* Creation-time knobs, kept so [restart_component] rebuilds a
     component exactly as [boot] did. *)
  families : Pf.family list option;
  bgp_redump : bool;
  tel_ns : string; (* ambient telemetry namespace captured at boot *)
  mutable fea_c : Fea.t option;
  mutable rib_c : Rib.t option;
  mutable bgp_c : Bgp_process.t option;
  mutable rip_c : Rip_process.t option;
  mutable ospf_c : Ospf_process.t option;
  cfg : Config_tree.t;
}

let eventloop t = t.loop
let netsim t = t.net
let finder t = t.fndr

let alive name = function
  | Some c -> c
  | None -> failwith ("Rtrmgr: the " ^ name ^ " is down")

let fea t = alive "FEA" t.fea_c
let rib t = alive "RIB" t.rib_c
let fea_opt t = t.fea_c
let rib_opt t = t.rib_c
let bgp t = t.bgp_c
let rip t = t.rip_c
let ospf t = t.ospf_c
let profiler t = t.prof
let config_text t = Config_tree.render t.cfg

(* Policy attributes hold stack-language source with ';' as the line
   separator (configurations are line-oriented). *)
let compile_policy ~where source =
  let source = String.concat "\n" (String.split_on_char ';' source) in
  match Policy.compile source with
  | Ok p -> Ok p
  | Error e -> Error (Printf.sprintf "%s: bad policy: %s" where e)

let leaves_all (cfg : Config_tree.t) name =
  List.filter_map
    (fun (k, v) -> if k = name then Some v else None)
    cfg.Config_tree.leaves

let exception_to_errors f =
  try f () with
  | Failure msg -> Error [ msg ]
  | Invalid_argument msg -> Error [ msg ]

(* --- component configuration ------------------------------------------- *)

let configure_interfaces cfg =
  match Config_tree.path cfg [ "interfaces" ] with
  | None -> []
  | Some ifs ->
    List.map
      (fun (iface : Config_tree.t) ->
         let name = Option.value iface.Config_tree.key ~default:"?" in
         (name, Ipv4.of_string_exn (Config_tree.leaf_exn iface "address")))
      (Config_tree.children ifs "interface")

let configure_static rib_c cfg =
  match Config_tree.path cfg [ "protocols"; "static" ] with
  | None -> Ok ()
  | Some static ->
    List.fold_left
      (fun acc (route : Config_tree.t) ->
         match acc with
         | Error _ as e -> e
         | Ok () ->
           let net =
             Ipv4net.of_string_exn (Option.get route.Config_tree.key)
           in
           let nexthop =
             Ipv4.of_string_exn (Config_tree.leaf_exn route "nexthop")
           in
           let metric =
             match Config_tree.leaf route "metric" with
             | Some m -> int_of_string m
             | None -> 0
           in
           (match
              Rib.add_route rib_c ~protocol:"static" ~net ~nexthop ~metric ()
            with
            | Ok () -> Ok ()
            | Error e -> Error [ "static route: " ^ e ]))
      (Ok ())
      (Config_tree.children static "route")

let configure_bgp ?families ?profiler ?(redump = true) fndr loop net cfg =
  match Config_tree.path cfg [ "protocols"; "bgp" ] with
  | None -> Ok None
  | Some bgp_cfg ->
    let local_as = int_of_string (Config_tree.leaf_exn bgp_cfg "local-as") in
    let bgp_id = Ipv4.of_string_exn (Config_tree.leaf_exn bgp_cfg "bgp-id") in
    let bgp_c =
      Bgp_process.create ?families ?profiler ~redump_on_reestablish:redump
        fndr loop ~netsim:net ~local_as ~bgp_id ()
    in
    let peer_result =
      List.fold_left
        (fun acc (peer : Config_tree.t) ->
           match acc with
           | Error _ as e -> e
           | Ok () ->
             let where = Config_tree.node_id peer in
             let peer_addr =
               Ipv4.of_string_exn (Option.get peer.Config_tree.key)
             in
             let local_addr =
               Ipv4.of_string_exn (Config_tree.leaf_exn peer "local-ip")
             in
             let peer_as = int_of_string (Config_tree.leaf_exn peer "as") in
             let base =
               Bgp_process.default_peer_config ~peer_addr ~local_addr ~peer_as
             in
             let policies name =
               match Config_tree.leaf peer name with
               | None -> Ok []
               | Some src ->
                 (match compile_policy ~where src with
                  | Ok p -> Ok [ p ]
                  | Error e -> Error [ e ])
             in
             (match policies "import-policy", policies "export-policy" with
              | Ok import_policies, Ok export_policies ->
                let pc =
                  { base with
                    Bgp_process.hold_time =
                      (match Config_tree.leaf peer "holdtime" with
                       | Some h -> float_of_string h
                       | None -> base.Bgp_process.hold_time);
                    connect_retry =
                      (match Config_tree.leaf peer "connect-retry" with
                       | Some cr -> float_of_string cr
                       | None -> base.Bgp_process.connect_retry);
                    damping =
                      (match Config_tree.leaf peer "damping" with
                       | Some "true" -> Some Bgp_damping.default_params
                       | _ -> None);
                    checking_cache =
                      Config_tree.leaf peer "checking-cache" = Some "true";
                    import_policies;
                    export_policies }
                in
                Bgp_process.add_peer bgp_c pc;
                Ok ()
              | Error e, _ | _, Error e -> Error e))
        (Ok ())
        (Config_tree.children bgp_cfg "peer")
    in
    (match peer_result with
     | Error e ->
       Bgp_process.shutdown bgp_c;
       Error e
     | Ok () ->
       List.iter
         (fun (network : Config_tree.t) ->
            Bgp_process.originate bgp_c
              (Ipv4net.of_string_exn (Option.get network.Config_tree.key)))
         (Config_tree.children bgp_cfg "network");
       Bgp_process.start bgp_c;
       Ok (Some bgp_c))

let configure_rip ?families fndr loop cfg =
  match Config_tree.path cfg [ "protocols"; "rip" ] with
  | None -> Ok None
  | Some rip_cfg ->
    let ifaces =
      List.map
        (fun (iface : Config_tree.t) ->
           { Rip_process.if_addr =
               Ipv4.of_string_exn (Option.get iface.Config_tree.key);
             if_neighbors =
               List.map Ipv4.of_string_exn (leaves_all iface "neighbor") })
        (Config_tree.children rip_cfg "interface")
    in
    let base = Rip_process.default_config ~ifaces in
    let config =
      { base with
        Rip_process.update_interval =
          (match Config_tree.leaf rip_cfg "update-interval" with
           | Some v -> float_of_string v
           | None -> base.Rip_process.update_interval);
        timeout =
          (match Config_tree.leaf rip_cfg "timeout" with
           | Some v -> float_of_string v
           | None -> base.Rip_process.timeout) }
    in
    let rip_c = Rip_process.create ?families fndr loop config in
    List.iter
      (fun (route : Config_tree.t) ->
         let metric =
           match Config_tree.leaf route "metric" with
           | Some m -> int_of_string m
           | None -> 1
         in
         Rip_process.inject rip_c
           ~net:(Ipv4net.of_string_exn (Option.get route.Config_tree.key))
           ~metric ())
      (Config_tree.children rip_cfg "route");
    Rip_process.start rip_c;
    (match Config_tree.leaf rip_cfg "redistribute" with
     | Some src ->
       (match compile_policy ~where:"rip redistribute" src with
        | Ok _ ->
          (* Pass the raw source; the RIB compiles it on subscription. *)
          Rip_process.subscribe_rib_redistribution rip_c
            ~policy:(String.concat "\n" (String.split_on_char ';' src));
          Ok (Some rip_c)
        | Error e ->
          Rip_process.shutdown rip_c;
          Error [ e ])
     | None -> Ok (Some rip_c))

let configure_ospf ?families fndr loop cfg =
  match Config_tree.path cfg [ "protocols"; "ospf" ] with
  | None -> Ok None
  | Some ospf_cfg ->
    let router_id =
      Ipv4.of_string_exn (Config_tree.leaf_exn ospf_cfg "router-id")
    in
    let ifaces =
      List.map
        (fun (iface : Config_tree.t) ->
           { Ospf_process.o_addr =
               Ipv4.of_string_exn (Option.get iface.Config_tree.key);
             o_neighbors =
               List.map
                 (fun (n : Config_tree.t) ->
                    { Ospf_process.n_addr =
                        Ipv4.of_string_exn (Option.get n.Config_tree.key);
                      n_id =
                        Ipv4.of_string_exn (Config_tree.leaf_exn n "router-id");
                      n_cost =
                        (match Config_tree.leaf n "cost" with
                         | Some c -> int_of_string c
                         | None -> 1) })
                 (Config_tree.children iface "neighbor") })
        (Config_tree.children ospf_cfg "interface")
    in
    let stub_prefixes =
      List.map
        (fun (s : Config_tree.t) ->
           ( Ipv4net.of_string_exn (Option.get s.Config_tree.key),
             match Config_tree.leaf s "cost" with
             | Some c -> int_of_string c
             | None -> 1 ))
        (Config_tree.children ospf_cfg "stub")
    in
    let base = Ospf_process.default_config ~router_id ~ifaces ~stub_prefixes () in
    let config =
      { base with
        Ospf_process.hello_interval =
          (match Config_tree.leaf ospf_cfg "hello-interval" with
           | Some v -> float_of_string v
           | None -> base.Ospf_process.hello_interval);
        dead_interval =
          (match Config_tree.leaf ospf_cfg "dead-interval" with
           | Some v -> float_of_string v
           | None -> base.Ospf_process.dead_interval) }
    in
    let ospf_c = Ospf_process.create ?families fndr loop config in
    Ospf_process.start ospf_c;
    Ok (Some ospf_c)

(* --- boot -------------------------------------------------------------------- *)

(* Boot one router's components (FEA, RIB + connected /24s + static
   routes). Factored out of [boot] so [restart_component] can rebuild
   exactly what boot built. *)
let make_fea ?families ?profiler ~interfaces ~net fndr loop =
  Fea.create ?families ?profiler:profiler ~interfaces ~netsim:net fndr loop ()

let make_rib ?families ?profiler ~interfaces ~cfg fndr loop =
  let rib_c = Rib.create ?families ?profiler fndr loop () in
  (* Connected routes for each interface's /24. *)
  List.iter
    (fun (_, a) ->
       match
         Rib.add_route rib_c ~protocol:"connected"
           ~net:(Ipv4net.make a 24) ~nexthop:Ipv4.zero ()
       with
       | Ok () -> ()
       | Error e -> Log.warn (fun m -> m "connected route: %s" e))
    interfaces;
  match configure_static rib_c cfg with
  | Ok () -> Ok rib_c
  | Error e ->
    Rib.shutdown rib_c;
    Error e

let boot ?loop ?netsim:net ?finder:fndr ?families ?(bgp_redump = true)
    ~config () =
  let loop = match loop with Some l -> l | None -> Eventloop.create () in
  let net = match net with Some n -> n | None -> Netsim.create loop in
  let fndr = match fndr with Some f -> f | None -> Finder.create () in
  match Config_tree.parse config with
  | Error e -> Error [ e ]
  | Ok cfg ->
    (match Template.validate Template.builtin cfg with
     | Error problems -> Error problems
     | Ok () ->
       exception_to_errors (fun () ->
           let prof =
             match Config_tree.path cfg [ "profiling" ] with
             | Some p when Config_tree.leaf p "enabled" = Some "true" ->
               Some (Profiler.create loop)
             | _ -> None
           in
           (* Telemetry defaults on for a booted router (stage timings,
              trace spans, per-family XRL counters); [telemetry {
              enabled: false }] turns it off for overhead-sensitive
              deployments. *)
           (match Config_tree.path cfg [ "telemetry" ] with
            | Some p when Config_tree.leaf p "enabled" = Some "false" ->
              Telemetry.set_enabled false
            | _ -> Telemetry.set_enabled true);
           let interfaces = configure_interfaces cfg in
           let fea_c =
             make_fea ?families ?profiler:prof ~interfaces ~net fndr loop
           in
           match make_rib ?families ?profiler:prof ~interfaces ~cfg fndr loop with
           | Error e ->
             Fea.shutdown fea_c;
             Error e
           | Ok rib_c ->
             (match
                configure_bgp ?families ?profiler:prof ~redump:bgp_redump
                  fndr loop net cfg
              with
              | Error e ->
                Rib.shutdown rib_c;
                Fea.shutdown fea_c;
                Error e
              | Ok bgp_c ->
                (match configure_rip ?families fndr loop cfg with
                 | Error e ->
                   Option.iter Bgp_process.shutdown bgp_c;
                   Rib.shutdown rib_c;
                   Fea.shutdown fea_c;
                   Error e
                 | Ok rip_c ->
                   (match configure_ospf ?families fndr loop cfg with
                    | Error e ->
                      Option.iter Rip_process.shutdown rip_c;
                      Option.iter Bgp_process.shutdown bgp_c;
                      Rib.shutdown rib_c;
                      Fea.shutdown fea_c;
                      Error e
                    | Ok ospf_c ->
                      (* The telemetry/0.1 service rides its own sole
                         router so xorp_top and call_xrl reach it by
                         class name, like any other component. *)
                      let tel_r = Telemetry_xrl.expose fndr loop in
                      Log.info (fun m -> m "router booted");
                      Ok
                        { loop; net; fndr; prof; tel_r;
                          families; bgp_redump;
                          tel_ns = Telemetry.current_namespace ();
                          fea_c = Some fea_c; rib_c = Some rib_c;
                          bgp_c; rip_c; ospf_c; cfg })))))

(* --- component kill/restart --------------------------------------------- *)

let component_name = function
  | `Fea -> "fea" | `Rib -> "rib" | `Bgp -> "bgp"
  | `Rip -> "rip" | `Ospf -> "ospf"

let kill_component t (comp : component) =
  match comp with
  | `Fea -> Option.iter Fea.shutdown t.fea_c; t.fea_c <- None
  | `Rib -> Option.iter Rib.shutdown t.rib_c; t.rib_c <- None
  | `Bgp -> Option.iter Bgp_process.shutdown t.bgp_c; t.bgp_c <- None
  | `Rip -> Option.iter Rip_process.shutdown t.rip_c; t.rip_c <- None
  | `Ospf -> Option.iter Ospf_process.shutdown t.ospf_c; t.ospf_c <- None

let restart_component t (comp : component) =
  let families = t.families in
  (* Rebuild under the namespace the router booted with, so the new
     generation's metrics land where the old one's did. *)
  Telemetry.with_namespace t.tel_ns (fun () ->
      let warn = function
        | Ok _ -> ()
        | Error es ->
          Log.warn (fun m ->
              m "restarting %s: %s" (component_name comp)
                (String.concat "; " es))
      in
      match comp with
      | `Fea ->
        if t.fea_c = None then
          t.fea_c <-
            Some
              (make_fea ?families ?profiler:t.prof
                 ~interfaces:(configure_interfaces t.cfg) ~net:t.net t.fndr
                 t.loop)
      | `Rib ->
        if t.rib_c = None then begin
          match
            make_rib ?families ?profiler:t.prof
              ~interfaces:(configure_interfaces t.cfg) ~cfg:t.cfg t.fndr t.loop
          with
          | Ok rib_c -> t.rib_c <- Some rib_c
          | Error _ as e -> warn e
        end
      | `Bgp ->
        if t.bgp_c = None then begin
          match
            configure_bgp ?families ?profiler:t.prof ~redump:t.bgp_redump
              t.fndr t.loop t.net t.cfg
          with
          | Ok c -> t.bgp_c <- c
          | Error _ as e -> warn e
        end
      | `Rip ->
        if t.rip_c = None then begin
          match configure_rip ?families t.fndr t.loop t.cfg with
          | Ok c -> t.rip_c <- c
          | Error _ as e -> warn e
        end
      | `Ospf ->
        if t.ospf_c = None then begin
          match configure_ospf ?families t.fndr t.loop t.cfg with
          | Ok c -> t.ospf_c <- c
          | Error _ as e -> warn e
        end)

(* --- show commands --------------------------------------------------------------- *)

let show_routes t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Destination          Nexthop          Metric Protocol\n";
  Rib.fold_winners (rib t)
    (fun r () ->
       Buffer.add_string buf
         (Printf.sprintf "%-20s %-16s %6d %s\n"
            (Ipv4net.to_string r.Rib_route.net)
            (Ipv4.to_string r.nexthop)
            r.metric r.protocol))
    ();
  Buffer.contents buf

let show_fib t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Destination          Nexthop          Iface Protocol\n";
  List.iter
    (fun (e : Fib.entry) ->
       Buffer.add_string buf
         (Printf.sprintf "%-20s %-16s %-5s %s\n"
            (Ipv4net.to_string e.Fib.net)
            (Ipv4.to_string e.nexthop)
            e.ifname e.protocol))
    (Fib.entries (Fea.fib (fea t)));
  Buffer.contents buf

let show_bgp_peers t =
  match t.bgp_c with
  | None -> "BGP is not configured\n"
  | Some bgp_c ->
    let buf = Buffer.create 128 in
    Buffer.add_string buf "Peer             State        RibIn\n";
    List.iter
      (fun peer ->
         Buffer.add_string buf
           (Printf.sprintf "%-16s %-12s %5d\n" (Ipv4.to_string peer)
              (match Bgp_process.peer_state bgp_c peer with
               | Some st -> Peer_fsm.state_to_string st
               | None -> "?")
              (Bgp_process.ribin_count bgp_c peer)))
      (Bgp_process.peer_addresses bgp_c);
    Buffer.contents buf

let show_rip t =
  match t.rip_c with
  | None -> "RIP is not configured\n"
  | Some rip_c ->
    let buf = Buffer.create 128 in
    Buffer.add_string buf "Destination          Metric Nexthop\n";
    List.iter
      (fun (net, metric, nexthop) ->
         Buffer.add_string buf
           (Printf.sprintf "%-20s %6d %s\n" (Ipv4net.to_string net) metric
              (Ipv4.to_string nexthop)))
      (Rip_process.routes rip_c);
    Buffer.contents buf

let show_ospf t =
  match t.ospf_c with
  | None -> "OSPF is not configured\n"
  | Some ospf_c ->
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "LSDB: %d LSAs, %d SPF runs\n"
         (Ospf_process.lsdb_size ospf_c)
         (Ospf_process.spf_runs ospf_c));
    Buffer.add_string buf "Destination          Cost Nexthop\n";
    List.iter
      (fun (net, cost, nexthop) ->
         Buffer.add_string buf
           (Printf.sprintf "%-20s %4d %s\n" (Ipv4net.to_string net) cost
              (Ipv4.to_string nexthop)))
      (Ospf_process.route_table ospf_c);
    Buffer.contents buf

let show_dataplane t =
  match Option.map Fea.dataplane t.fea_c with
  | None -> "the FEA is down\n"
  | Some None -> "no data plane (FEA runs without forwarding interfaces)\n"
  | Some (Some dp) -> Dataplane.render dp

let show_telemetry _t = Telemetry.render_table ()

(* The pipeline's staging queues and priority lanes (paper §5.1): the
   BGP inbound backlog, the fanout/RibOut lane splits, and the RIB's
   FEA transmit queue. During a full-table load the bulk figures swell
   while the urgent lanes stay near zero — that gap is the
   head-of-line fix at work. Live depths come from this router's
   components; the lane split from their telemetry gauges. *)
let show_queues t =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let rows =
    Telemetry.list_metrics ()
    |> List.filter_map (fun (name, m) ->
      match m with
      | Telemetry.Gauge g
        when contains name ".lane." || contains name ".backlog"
             || contains name ".fea_q." ->
        Some (name, int_of_float (Telemetry.gauge_value g))
      | _ -> None)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%-34s %8s\n" "Queue" "depth");
  Option.iter
    (fun rib_c ->
       Buffer.add_string buf
         (Printf.sprintf "%-34s %8d\n" "rib.fea_q (live)"
            (Rib.fea_queue_length rib_c)))
    t.rib_c;
  Option.iter
    (fun bgp_c ->
       Buffer.add_string buf
         (Printf.sprintf "%-34s %8d\n" "bgp.inbound (live)"
            (Bgp_process.inbound_backlog bgp_c));
       Buffer.add_string buf
         (Printf.sprintf "%-34s %8d\n" "bgp.fanout (live)"
            (Bgp_process.fanout_queue_length bgp_c)))
    t.bgp_c;
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%-34s %8d\n" n v))
    rows;
  Buffer.contents buf

let telemetry_router t = t.tel_r

let shutdown t =
  Xrl_router.shutdown t.tel_r;
  Option.iter Ospf_process.shutdown t.ospf_c;
  Option.iter Rip_process.shutdown t.rip_c;
  Option.iter Bgp_process.shutdown t.bgp_c;
  Option.iter Rib.shutdown t.rib_c;
  Option.iter Fea.shutdown t.fea_c;
  t.ospf_c <- None; t.rip_c <- None; t.bgp_c <- None;
  t.rib_c <- None; t.fea_c <- None
