(** The Router Manager: boots a complete router from a configuration
    file (paper §3).

    "The Router Manager holds the router configuration and starts,
    configures, and stops protocols and other router functionality. It
    hides the router's internal structure from the user, providing
    operators with unified management interfaces."

    [boot] parses and validates the configuration against the
    {!Template.builtin} schema, then instantiates components in
    dependency order — FEA, RIB, then protocols — on one event loop and
    simulated network, wiring everything through a Finder. The [show_*]
    operator commands render unified views without exposing which
    component owns what.

    Policy program attributes ([import-policy], [redistribute], ...)
    hold stack-language source with [;] standing in for newlines. *)

type t

type component = [ `Fea | `Rib | `Bgp | `Rip | `Ospf ]

val boot :
  ?loop:Eventloop.t -> ?netsim:Netsim.t -> ?finder:Finder.t ->
  ?families:Pf.family list -> ?bgp_redump:bool ->
  config:string -> unit -> (t, string list) result
(** Build and start a router. Default loop is a fresh simulated-clock
    loop. On [Error], nothing is left running.

    [families] selects the XRL transports of every component the boot
    creates (default: intra-process); the simulation harness passes a
    per-router chaos-wrapped {!Pf_sim} family. [bgp_redump] (default
    true) is {!Bgp_process.create}'s [redump_on_reestablish] — [false]
    is the fuzzer's [mesh-partition-heal] injected bug.

    The ambient {!Telemetry.current_namespace} at boot time is
    captured, so a multi-router process that boots each router under
    its own namespace gets per-router metrics, and
    {!restart_component} rebuilds components under the same
    namespace. *)

val eventloop : t -> Eventloop.t
val netsim : t -> Netsim.t
val finder : t -> Finder.t

val fea : t -> Fea.t
val rib : t -> Rib.t
(** @raise Failure if the component has been killed
    ({!kill_component}) and not restarted. *)

val fea_opt : t -> Fea.t option
val rib_opt : t -> Rib.t option
val bgp : t -> Bgp_process.t option
val rip : t -> Rip_process.t option
val ospf : t -> Ospf_process.t option
(** [None] when the protocol is not configured {e or} its component is
    currently killed. *)

val kill_component : t -> component -> unit
(** Shut the component down in place (clean shutdown: it deregisters
    from the Finder and closes its XRL endpoints). No-op if already
    down, or for a protocol the configuration never started. *)

val restart_component : t -> component -> unit
(** Rebuild the component from the booted configuration, exactly as
    {!boot} did (same XRL families, same telemetry namespace). No-op
    if it is already running or was never configured. *)

val profiler : t -> Profiler.t option
val telemetry_router : t -> Xrl_router.t
(** The sole router serving the [telemetry/0.1] XRL interface.
    Telemetry is enabled on boot unless the configuration says
    [telemetry { enabled: false }]. *)

val config_text : t -> string
(** The booted configuration, re-rendered. *)

(** {1 Operator commands} *)

val show_routes : t -> string
(** The RIB's winning routes, one per line. *)

val show_fib : t -> string
val show_bgp_peers : t -> string
val show_rip : t -> string
val show_ospf : t -> string

val show_dataplane : t -> string
(** The FEA's element graph (canonical config form) plus per-element
    rx/tx/drop counters; a note when no data plane is running. *)

val show_telemetry : t -> string
(** Counters, gauges, latency histograms (count/p50/p90/p99/max) and
    the span-ring occupancy, rendered as aligned text tables. *)

val show_queues : t -> string
(** The control-plane pipeline's staging queues and priority lanes:
    the BGP inbound backlog, the fanout/RibOut urgent/bulk lane
    depths, and the RIB's FEA transmit queue. During a full-table
    load the bulk figures swell while the urgent lanes stay near
    zero — the visible signature of the head-of-line fix. *)

val shutdown : t -> unit
