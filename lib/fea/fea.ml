let src = Logs.Src.create "xorp.fea" ~doc:"Forwarding Engine Abstraction"

module Log = (val Logs.src_log src : Logs.LOG)

let pp_kernel = "fea_kernel"
let pp_arrived = "fea_arrived"

(* The UDP port the element-graph data plane sends and receives on —
   our stand-in for "raw IP" between routers (RIP owns 520, BGP 179). *)
let dataplane_port = 4

type relay_socket = {
  sockid : int;
  client_target : string;
  dgram : Netsim.Dgram.socket;
}

type t = {
  router : Xrl_router.t;
  fib : Fib.t;
  profiler : Profiler.t option;
  ifaces : (string * Ipv4.t) list;
  netsim : Netsim.t option;
  sockets : (int, relay_socket) Hashtbl.t;
  client_watches : (string, unit) Hashtbl.t;
  mutable next_sockid : int;
  mutable installed : int;
  mutable dataplane : Dataplane.t option;
  mutable dp_socks : (string * Netsim.Dgram.socket) list;
  (* RIB graceful restart (mark and sweep): a route withdrawn while
     the RIB is down is never deleted from the FIB by anyone — the
     reborn RIB starts empty and only protocol replays reach it, so
     the withdrawal is simply gone. On RIB rebirth every FIB entry is
     marked stale; (re)installs unmark; whatever is still marked when
     the hold timer fires was not re-announced and is swept. *)
  mutable rib_up : bool;
  stale : (Ipv4net.t, unit) Hashtbl.t;
  mutable sweep_timer : Eventloop.timer option;
  swept : Telemetry.counter;
  lookups_control : Telemetry.counter;
  lookups_dataplane : Telemetry.counter;
}

(* How long a reborn RIB gets to repopulate the FIB before unconfirmed
   entries are swept. Generous against converge-time replay (protocol
   replays land within a few virtual seconds) yet well inside the
   simulation harness's quiescence window. *)
let rib_sweep_hold = 30.0

let fib t = t.fib
let xrl_router t = t.router
let interfaces t = t.ifaces
let routes_installed t = t.installed
let dataplane t = t.dataplane

(* Skips payload construction when the point is disabled, so bulk
   installs do not allocate per route per point. *)
let profile_net t point verb net =
  match t.profiler with
  | Some p when Profiler.enabled p point ->
    Profiler.record p point (verb ^ Ipv4net.to_string net)
  | _ -> ()

let ok = Xrl_error.Ok_xrl

let add_fib_handlers t =
  let r = t.router in
  (* Resolved here (boot time) rather than per call, so a multi-router
     process records each FEA's installs under its own namespace. *)
  let install_hist = Telemetry.histogram "fea.install.latency_us" in
  Xrl_router.add_handler r ~interface:"fea" ~method_name:"add_route4"
    (fun args reply ->
       let net = Xrl_atom.get_ipv4net args "net" in
       let nexthop = Xrl_atom.get_ipv4 args "nexthop" in
       let ifname =
         match Xrl_atom.find args "ifname" with
         | Some { value = Txt s; _ } -> s
         | _ -> ""
       in
       let protocol =
         match Xrl_atom.find args "protocol" with
         | Some { value = Txt s; _ } -> s
         | _ -> "unknown"
       in
       profile_net t pp_arrived "add " net;
       Telemetry.Trace.span_sync ~name:"fea.install"
         ~note:(Ipv4net.to_string net)
         ~clock:(fun () -> Eventloop.now (Xrl_router.eventloop t.router))
         (fun () ->
            Telemetry.time install_hist
              (fun () ->
                 Fib.add t.fib { Fib.net; nexthop; ifname; protocol };
                 Hashtbl.remove t.stale net;
                 t.installed <- t.installed + 1));
       profile_net t pp_kernel "add " net;
       reply ok []);
  Xrl_router.add_handler r ~interface:"fea" ~method_name:"delete_route4"
    (fun args reply ->
       let net = Xrl_atom.get_ipv4net args "net" in
       let existed =
         Telemetry.Trace.span_sync ~name:"fea.uninstall"
           ~note:(Ipv4net.to_string net)
           ~clock:(fun () -> Eventloop.now (Xrl_router.eventloop t.router))
           (fun () ->
              Telemetry.time install_hist
                (fun () ->
                   Hashtbl.remove t.stale net;
                   Fib.delete t.fib net))
       in
       profile_net t pp_kernel "delete " net;
       if existed then reply ok []
       else
         reply
           (Xrl_error.Command_failed
              ("no FIB entry for " ^ Ipv4net.to_string net))
           []);
  (* Bulk variants: one XRL carries a Route_pack-packed list. Profile
     points are still recorded per route so the pipeline-latency
     methodology (§8.2) sees every route, batched or not. *)
  Xrl_router.add_handler r ~interface:"fea" ~method_name:"add_routes4"
    (fun args reply ->
       let packed = Xrl_atom.get_binary args "routes" in
       match Route_pack.unpack_adds packed with
       | Error msg -> reply (Xrl_error.Bad_args ("routes: " ^ msg)) []
       | Ok adds ->
         let n = List.length adds in
         Telemetry.Trace.span_sync ~name:"fea.install_bulk"
           ~note:(string_of_int n ^ " routes")
           ~clock:(fun () -> Eventloop.now (Xrl_router.eventloop t.router))
           (fun () ->
              List.iter
                (fun { Route_pack.net; nexthop; ifname; protocol; metric = _ } ->
                   profile_net t pp_arrived "add " net;
                   Fib.add t.fib { Fib.net; nexthop; ifname; protocol };
                   Hashtbl.remove t.stale net;
                   t.installed <- t.installed + 1;
                   profile_net t pp_kernel "add " net)
                adds);
         reply ok [ Xrl_atom.u32 "count" n ]);
  Xrl_router.add_handler r ~interface:"fea" ~method_name:"delete_routes4"
    (fun args reply ->
       let packed = Xrl_atom.get_binary args "routes" in
       match Route_pack.unpack_deletes packed with
       | Error msg -> reply (Xrl_error.Bad_args ("routes: " ^ msg)) []
       | Ok nets ->
         let n = List.length nets in
         Telemetry.Trace.span_sync ~name:"fea.uninstall_bulk"
           ~note:(string_of_int n ^ " routes")
           ~clock:(fun () -> Eventloop.now (Xrl_router.eventloop t.router))
           (fun () ->
              List.iter
                (fun net ->
                   profile_net t pp_arrived "delete " net;
                   Hashtbl.remove t.stale net;
                   ignore (Fib.delete t.fib net);
                   profile_net t pp_kernel "delete " net)
                nets);
         reply ok [ Xrl_atom.u32 "count" n ]);
  Xrl_router.add_handler r ~interface:"fea" ~method_name:"lookup_route4"
    (fun args reply ->
       let addr = Xrl_atom.get_ipv4 args "addr" in
       Telemetry.incr t.lookups_control;
       match Fib.lookup t.fib addr with
       | Some e ->
         reply ok
           [ Xrl_atom.ipv4net "net" e.Fib.net;
             Xrl_atom.ipv4 "nexthop" e.Fib.nexthop;
             Xrl_atom.txt "ifname" e.Fib.ifname ]
       | None ->
         reply
           (Xrl_error.Command_failed
              ("no route to " ^ Ipv4.to_string addr))
           []);
  Xrl_router.add_handler r ~interface:"fea" ~method_name:"get_fib_size"
    (fun _ reply -> reply ok [ Xrl_atom.u32 "size" (Fib.size t.fib) ]);
  Xrl_router.add_handler r ~interface:"fea" ~method_name:"get_interfaces"
    (fun _ reply ->
       let vals =
         List.concat_map
           (fun (name, a) ->
              [ Xrl_atom.Txt name; Xrl_atom.Txt (Ipv4.to_string a) ])
           t.ifaces
       in
       reply ok [ Xrl_atom.list "interfaces" vals ])

let deliver_to_client t sock ~src:srcaddr ~sport payload =
  let xrl =
    Xrl.make ~target:sock.client_target ~interface:"fea_client"
      ~method_name:"recv"
      [ Xrl_atom.u32 "sockid" sock.sockid;
        Xrl_atom.ipv4 "src" srcaddr;
        Xrl_atom.u32 "sport" sport;
        Xrl_atom.binary "payload" payload ]
  in
  Xrl_router.send t.router xrl (fun err _ ->
      if not (Xrl_error.is_ok err) then
        Log.warn (fun m ->
            m "udp relay delivery to %s failed: %s" sock.client_target
              (Xrl_error.to_string err)))

(* Close a dead client's relay sockets (§6.2 lifetime notification):
   the address/port stays bound by the old instance otherwise, so a
   restarted RIP/OSPF could never re-open it. Client targets are
   instance names ("rip-3"); we watch their class. *)
let watch_relay_client t client_target =
  let class_name =
    match String.rindex_opt client_target '-' with
    | Some i -> String.sub client_target 0 i
    | None -> client_target
  in
  if not (Hashtbl.mem t.client_watches class_name) then begin
    Hashtbl.replace t.client_watches class_name ();
    Finder.watch_class (Xrl_router.finder t.router) class_name
      (fun event instance ->
         match event with
         | Finder.Birth -> ()
         | Finder.Death ->
           let stale =
             Hashtbl.fold
               (fun id s acc ->
                  if String.equal s.client_target instance then (id, s) :: acc
                  else acc)
               t.sockets []
           in
           List.iter
             (fun (id, s) ->
                Log.info (fun m ->
                    m "closing relay socket %d of dead client %s" id instance);
                Netsim.Dgram.close s.dgram;
                Hashtbl.remove t.sockets id)
             stale)
  end

let add_udp_handlers t =
  let r = t.router in
  Xrl_router.add_handler r ~interface:"fea_udp" ~method_name:"udp_open"
    (fun args reply ->
       let client_target = Xrl_atom.get_txt args "client_target" in
       let addr = Xrl_atom.get_ipv4 args "addr" in
       let port = Xrl_atom.get_u32 args "port" in
       match t.netsim with
       | None -> reply (Xrl_error.Command_failed "FEA has no data plane") []
       | Some net ->
         if not (List.exists (fun (_, a) -> Ipv4.equal a addr) t.ifaces) then
           reply
             (Xrl_error.Command_failed
                (Ipv4.to_string addr ^ " is not a local interface address"))
             []
         else begin
           match Netsim.Dgram.bind net ~addr ~port with
           | dgram ->
             t.next_sockid <- t.next_sockid + 1;
             let sock = { sockid = t.next_sockid; client_target; dgram } in
             Hashtbl.replace t.sockets sock.sockid sock;
             watch_relay_client t client_target;
             Netsim.Dgram.on_receive dgram (fun ~src ~sport payload ->
                 deliver_to_client t sock ~src ~sport payload);
             reply ok [ Xrl_atom.u32 "sockid" sock.sockid ]
           | exception Invalid_argument msg ->
             reply (Xrl_error.Command_failed msg) []
         end);
  Xrl_router.add_handler r ~interface:"fea_udp" ~method_name:"udp_send"
    (fun args reply ->
       let sockid = Xrl_atom.get_u32 args "sockid" in
       let dst = Xrl_atom.get_ipv4 args "dst" in
       let dport = Xrl_atom.get_u32 args "dport" in
       let payload = Xrl_atom.get_binary args "payload" in
       match Hashtbl.find_opt t.sockets sockid with
       | None ->
         reply
           (Xrl_error.Command_failed (Printf.sprintf "no socket %d" sockid))
           []
       | Some sock ->
         Netsim.Dgram.sendto sock.dgram ~dst ~dport payload;
         reply ok []);
  Xrl_router.add_handler r ~interface:"fea_udp" ~method_name:"udp_close"
    (fun args reply ->
       let sockid = Xrl_atom.get_u32 args "sockid" in
       match Hashtbl.find_opt t.sockets sockid with
       | None ->
         reply
           (Xrl_error.Command_failed (Printf.sprintf "no socket %d" sockid))
           []
       | Some sock ->
         Netsim.Dgram.close sock.dgram;
         Hashtbl.remove t.sockets sockid;
         reply ok [])

(* ------------------------------------------------------------------ *)
(* Element-graph data plane (paper §5 extensibility, below the
   control plane). The FEA owns the ingress/egress sockets — one per
   interface on [dataplane_port] — so the element graph can be
   replaced at runtime without rebinding anything. *)

let dp_tx t ~ifname ~dst payload =
  let sock =
    match List.assoc_opt ifname t.dp_socks with
    | Some s -> Some s
    | None -> (
        (* The route carried no interface name: fall back to the
           interface whose /24 contains the next hop, else the first. *)
        let on_link (name, _) =
          match List.assoc_opt name t.ifaces with
          | Some addr -> Ipv4net.contains_addr (Ipv4net.make addr 24) dst
          | None -> false
        in
        match List.find_opt on_link t.dp_socks with
        | Some (_, s) -> Some s
        | None -> ( match t.dp_socks with (_, s) :: _ -> Some s | [] -> None))
  in
  match sock with
  | Some s -> Netsim.Dgram.sendto s ~dst ~dport:dataplane_port payload
  | None -> ()

let setup_dataplane t net ~config =
  let lookup addr =
    Telemetry.incr t.lookups_dataplane;
    match Fib.lookup t.fib addr with
    | None -> None
    | Some e ->
      Some
        { Dataplane.lr_nexthop = e.Fib.nexthop; lr_ifname = e.Fib.ifname;
          lr_connected = String.equal e.Fib.protocol "connected" }
  in
  let dp =
    Dataplane.create
      ~loop:(Xrl_router.eventloop t.router)
      ~lookup
      ~tx:(fun ~ifname ~dst payload -> dp_tx t ~ifname ~dst payload)
      ~ifaces:(List.map fst t.ifaces) ()
  in
  t.dp_socks <-
    List.filter_map
      (fun (ifname, addr) ->
         match Netsim.Dgram.bind net ~addr ~port:dataplane_port with
         | sock ->
           Netsim.Dgram.on_receive sock (fun ~src:_ ~sport:_ payload ->
               match t.dataplane with
               | Some dp -> Dataplane.rx dp ~ifname payload
               | None -> ());
           Some (ifname, sock)
         | exception Invalid_argument msg ->
           Log.warn (fun m ->
               m "data plane: cannot bind %s:%d on %s: %s"
                 (Ipv4.to_string addr) dataplane_port ifname msg);
           None)
      t.ifaces;
  (match Dataplane.install_config dp config with
   | Ok () -> ()
   | Error e -> failwith ("dataplane graph rejected: " ^ e));
  t.dataplane <- Some dp

let add_dataplane_handlers t =
  let r = t.router in
  let add = Xrl_router.add_handler r ~interface:"dataplane" ~version:"0.1" in
  let with_dp reply f =
    match t.dataplane with
    | None -> reply (Xrl_error.Command_failed "FEA has no data plane") []
    | Some dp -> f dp
  in
  add ~method_name:"install_graph" (fun args reply ->
      with_dp reply (fun dp ->
          let config = Xrl_atom.get_txt args "config" in
          match Dataplane.install_config dp config with
          | Ok () ->
            reply ok
              [ Xrl_atom.u32 "elements" (Dataplane.element_count dp) ]
          | Error e -> reply (Xrl_error.Command_failed e) []));
  add ~method_name:"get_graph" (fun _ reply ->
      with_dp reply (fun dp ->
          reply ok [ Xrl_atom.txt "config" (Dataplane.config dp) ]));
  add ~method_name:"list_elements" (fun _ reply ->
      with_dp reply (fun dp ->
          let vals =
            List.map
              (fun s ->
                 Xrl_atom.Txt
                   (Printf.sprintf "%s|%s|%d|%d" s.Dataplane.st_name
                      s.Dataplane.st_klass s.Dataplane.st_rx
                      s.Dataplane.st_tx))
              (Dataplane.stats dp)
          in
          reply ok [ Xrl_atom.list "elements" vals ]));
  add ~method_name:"get_counters" (fun args reply ->
      with_dp reply (fun dp ->
          let name = Xrl_atom.get_txt args "name" in
          match
            List.find_opt
              (fun s -> String.equal s.Dataplane.st_name name)
              (Dataplane.stats dp)
          with
          | None ->
            reply (Xrl_error.Command_failed ("no element " ^ name)) []
          | Some s ->
            reply ok
              [ Xrl_atom.txt "klass" s.Dataplane.st_klass;
                Xrl_atom.u32 "rx" s.Dataplane.st_rx;
                Xrl_atom.u32 "tx" s.Dataplane.st_tx;
                Xrl_atom.list "drops"
                  (List.map
                     (fun (reason, n) ->
                        Xrl_atom.Txt (Printf.sprintf "%s|%d" reason n))
                     s.Dataplane.st_drops) ]));
  add ~method_name:"insert_element" (fun args reply ->
      with_dp reply (fun dp ->
          let name = Xrl_atom.get_txt args "name" in
          let klass = Xrl_atom.get_txt args "klass" in
          let after = Xrl_atom.get_txt args "after" in
          let dp_args =
            match Xrl_atom.find args "config" with
            | Some { value = Txt s; _ } when String.trim s <> "" ->
              List.map String.trim (String.split_on_char ',' s)
            | _ -> []
          in
          let port =
            match Xrl_atom.find args "port" with
            | Some { value = U32 p; _ } -> p
            | _ -> 0
          in
          match
            Dataplane.insert_element dp ~name ~klass ~args:dp_args ~after
              ~port
          with
          | Ok () -> reply ok []
          | Error e -> reply (Xrl_error.Command_failed e) []));
  add ~method_name:"remove_element" (fun args reply ->
      with_dp reply (fun dp ->
          let name = Xrl_atom.get_txt args "name" in
          match Dataplane.remove_element dp ~name with
          | Ok () -> reply ok []
          | Error e -> reply (Xrl_error.Command_failed e) []))

(* Mark-and-sweep across a RIB restart. The replay direction (each
   protocol re-announcing into the reborn RIB) restores routes that
   still exist; this is the other half: routes that stopped existing
   while the RIB was down would survive in the FIB forever, because no
   live component remembers them. Snapshot the FIB as "stale" when the
   new RIB registers; everything it re-installs within the hold is
   unmarked; the remainder is swept. *)
let watch_rib_lifecycle t =
  let loop = Xrl_router.eventloop t.router in
  Finder.watch_class (Xrl_router.finder t.router) "rib" (fun event _instance ->
      match event with
      | Finder.Death ->
        if t.rib_up
        && Finder.live_instances (Xrl_router.finder t.router) "rib" = []
        then t.rib_up <- false
      | Finder.Birth ->
        if not t.rib_up then begin
          t.rib_up <- true;
          Hashtbl.reset t.stale;
          List.iter
            (fun (e : Fib.entry) -> Hashtbl.replace t.stale e.Fib.net ())
            (Fib.entries t.fib);
          Option.iter Eventloop.cancel t.sweep_timer;
          t.sweep_timer <-
            Some
              (Eventloop.after loop rib_sweep_hold (fun () ->
                   t.sweep_timer <- None;
                   let n =
                     Hashtbl.fold
                       (fun net () n ->
                          if Fib.delete t.fib net then n + 1 else n)
                       t.stale 0
                   in
                   Hashtbl.reset t.stale;
                   if n > 0 then begin
                     Telemetry.add t.swept n;
                     Log.info (fun m ->
                         m "RIB restart sweep: %d unconfirmed FIB entries \
                            removed" n)
                   end))
        end)

let create ?families ?profiler ?(interfaces = []) ?netsim
    ?(dataplane = `Default) finder loop () =
  (* A fresh generation starts its metric namespace from zero, so a
     restarted FEA does not inherit the dead instance's counts. *)
  Telemetry.reset_prefix "fea.";
  let router =
    Xrl_router.create ?families finder loop ~class_name:"fea" ~sole:true ()
  in
  let t =
    { router; fib = Fib.create (); profiler; ifaces = interfaces; netsim;
      sockets = Hashtbl.create 8; client_watches = Hashtbl.create 4;
      next_sockid = 0; installed = 0; dataplane = None; dp_socks = [];
      rib_up = true; stale = Hashtbl.create 64; sweep_timer = None;
      swept = Telemetry.counter "fea.rib_sweep.removed";
      lookups_control = Telemetry.counter "fea.lookups.control";
      lookups_dataplane = Telemetry.counter "fea.lookups.dataplane" }
  in
  (match profiler with
   | Some p ->
     Profiler.define p pp_arrived;
     Profiler.define p pp_kernel
   | None -> ());
  add_fib_handlers t;
  add_udp_handlers t;
  add_dataplane_handlers t;
  watch_rib_lifecycle t;
  (match (netsim, dataplane) with
   | Some net, `Default when interfaces <> [] ->
     setup_dataplane t net
       ~config:(Dataplane.default_config ~ifaces:(List.map fst interfaces))
   | Some net, `Graph config -> setup_dataplane t net ~config
   | _ -> ());
  t

let shutdown t =
  Option.iter Eventloop.cancel t.sweep_timer;
  t.sweep_timer <- None;
  Hashtbl.iter (fun _ sock -> Netsim.Dgram.close sock.dgram) t.sockets;
  Hashtbl.reset t.sockets;
  (match t.dataplane with Some dp -> Dataplane.shutdown dp | None -> ());
  List.iter (fun (_, sock) -> Netsim.Dgram.close sock) t.dp_socks;
  t.dp_socks <- [];
  t.dataplane <- None;
  Xrl_router.shutdown t.router
