type entry = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  ifname : string;
  protocol : string;
}

type t = { trie : entry Ptree.t }

let create () = { trie = Ptree.create () }
let add t entry = ignore (Ptree.insert t.trie entry.net entry)
let delete t net = Ptree.remove t.trie net <> None
let lookup t addr = Option.map snd (Ptree.longest_match t.trie addr)
let get t net = Ptree.find t.trie net
let size t = Ptree.size t.trie
let entries t = List.map snd (Ptree.to_list t.trie)
let clear t = Ptree.clear t.trie
