(** The forwarding table (FIB) behind the FEA — our stand-in for the
    kernel forwarding plane. Pure data structure; the {!Fea} component
    wraps it with an XRL interface and profile points. *)

type entry = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  ifname : string;
  protocol : string; (** Which protocol installed it (diagnostics). *)
}

type t

val create : unit -> t

val add : t -> entry -> unit
(** Insert or overwrite the entry for [entry.net]. *)

val delete : t -> Ipv4net.t -> bool
(** [true] if an entry was present. *)

val lookup : t -> Ipv4.t -> entry option
(** Longest-prefix-match forwarding decision. Lookups are not counted
    here: the FIB has several consumers (the control plane's
    [lookup_route4], the data plane's [LpmLookup]) and conflating their
    load was misleading — each consumer counts its own calls in
    telemetry ([fea.lookups.control], [fea.lookups.dataplane], and the
    per-element [dataplane.*] counters). *)

val get : t -> Ipv4net.t -> entry option
(** Exact-match fetch. *)

val size : t -> int
val entries : t -> entry list
val clear : t -> unit
