(** The Forwarding Engine Abstraction component (paper §3).

    Provides a stable XRL API between the control plane and the
    forwarding engine. Two roles, both from the paper:

    - {b FIB manipulation}: routing processes (in practice the RIB)
      install and remove forwarding entries. Each installation crosses
      the "kernel" boundary, recorded at the [fea_kernel] profile point
      — the final latency point of Figures 10–12.
    - {b Network-access relay} (§7): sandboxed routing processes do not
      touch sockets themselves; RIP sends and receives UDP through the
      FEA over XRLs. Here the "network" is a {!Netsim.t}.

    Since this PR the FEA also {e forwards}: it owns a {!Dataplane.t}
    — a Click-style element graph whose [LpmLookup] reads the live
    FIB — plus one datagram socket per interface on {!dataplane_port},
    so packets arriving over the netsim flow through the graph and
    back out. The graph is operator-visible and runtime-mutable over
    the [dataplane/0.1] XRL interface.

    XRL interface [fea/1.0]:
    [add_route4], [delete_route4], [lookup_route4], [get_fib_size],
    [get_interfaces].
    XRL interface [fea_udp/1.0]: [udp_open], [udp_send], [udp_close].
    Clients of the UDP relay must implement
    [fea_client/1.0/recv?sockid:u32&src:ipv4&sport:u32&payload:binary].
    XRL interface [dataplane/0.1]: [install_graph], [get_graph],
    [list_elements], [get_counters], [insert_element],
    [remove_element] (see docs/DATAPLANE.md). *)

type t

val create :
  ?families:Pf.family list ->
  ?profiler:Profiler.t ->
  ?interfaces:(string * Ipv4.t) list ->
  ?netsim:Netsim.t ->
  ?dataplane:[ `Default | `Graph of string | `Off ] ->
  Finder.t -> Eventloop.t -> unit -> t
(** Register the FEA (class ["fea"], sole instance) with the Finder.
    [interfaces] lists this router's (ifname, address) pairs; UDP-relay
    sockets bind to these addresses on [netsim]. Without a [netsim],
    the relay methods fail with [Command_failed].

    [dataplane] controls the forwarding path: [`Default] (the default)
    installs {!Dataplane.default_config} over [interfaces] whenever a
    [netsim] and at least one interface are present; [`Graph config]
    installs a custom graph (@raise Failure if it does not parse);
    [`Off] runs without one (the [dataplane/0.1] methods then fail
    with [Command_failed]). *)

val fib : t -> Fib.t
(** Direct access to the forwarding table (tests, benches, examples). *)

val dataplane : t -> Dataplane.t option
(** The running element-graph data plane, if one was set up. *)

val dataplane_port : int
(** UDP port (4) the data plane's per-interface ingress/egress sockets
    use on the netsim — the repo's stand-in for raw IP transport. *)

val xrl_router : t -> Xrl_router.t
val interfaces : t -> (string * Ipv4.t) list

val routes_installed : t -> int
(** Cumulative successful [add_route4] count. *)

val shutdown : t -> unit

(** {1 Profile points} *)

val pp_arrived : string
(** ["fea_arrived"] — update arriving at the FEA. *)

val pp_kernel : string
(** ["fea_kernel"] — "entering the kernel". *)
