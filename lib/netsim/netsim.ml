let src = Logs.Src.create "xorp.netsim" ~doc:"camlXORP network simulator"

module Log = (val Logs.src_log src : Logs.LOG)

type addr_port = int * int (* Ipv4 as int, port *)

type stream_endpoint = {
  net : t;
  latency : float;
  ep_local : Ipv4.t * int;
  ep_remote : Ipv4.t * int;
  mutable peer : stream_endpoint option;
  mutable ep_open : bool;
  mutable recv_cb : string -> unit;
  mutable close_cb : unit -> unit;
  (* Segments in flight TOWARD this endpoint. Each delivery timer pops
     the head, so delivery is FIFO in send order even when several
     segments share a deadline and the seeded timer tie-break shuffles
     their timers: a stream is TCP-like, it never reorders. *)
  inflight : segment Queue.t;
}

and segment = Seg_data of string | Seg_close

and dgram_socket = {
  dnet : t;
  d_local : Ipv4.t * int;
  mutable d_open : bool;
  mutable drecv_cb : src:Ipv4.t -> sport:int -> string -> unit;
}

and t = {
  loop : Eventloop.t;
  default_latency : float;
  listeners : (addr_port, listener_rec) Hashtbl.t;
  dsockets : (addr_port, dgram_socket) Hashtbl.t;
  (* Administratively-down links, keyed by the unordered address pair.
     While a pair is cut, connects fail, datagrams vanish, and any
     stream crossing the pair was severed when the cut landed. *)
  cuts : (int * int, unit) Hashtbl.t;
  (* Every live stream endpoint, so a link cut can find and sever the
     connections crossing it; compacted on each cut. *)
  mutable streams : stream_endpoint list;
  mutable loss_rng : Rng.t;
  mutable ephemeral : int;
}

and listener_rec = {
  l_net : t;
  l_key : addr_port;
  accept_cb : stream_endpoint -> unit;
  mutable l_open : bool;
}

let create ?(default_latency = 0.001) loop =
  {
    loop;
    default_latency;
    listeners = Hashtbl.create 16;
    dsockets = Hashtbl.create 16;
    cuts = Hashtbl.create 8;
    streams = [];
    loss_rng = Rng.create 7;
    ephemeral = 49152;
  }

let eventloop t = t.loop
let set_loss_seed t seed = t.loss_rng <- Rng.create seed
let key addr port = (Ipv4.to_int addr, port)

let addr_pair a b =
  let x = Ipv4.to_int a and y = Ipv4.to_int b in
  if x <= y then (x, y) else (y, x)

let link_cut t ~a ~b = Hashtbl.mem t.cuts (addr_pair a b)

module Stream = struct
  type endpoint = stream_endpoint
  type listener = listener_rec

  let listen net ~addr ~port accept_cb =
    let k = key addr port in
    if Hashtbl.mem net.listeners k then
      invalid_arg
        (Printf.sprintf "Netsim.Stream.listen: %s:%d already bound"
           (Ipv4.to_string addr) port);
    let l = { l_net = net; l_key = k; accept_cb; l_open = true } in
    Hashtbl.replace net.listeners k l;
    l

  let unlisten l =
    if l.l_open then begin
      l.l_open <- false;
      Hashtbl.remove l.l_net.listeners l.l_key
    end

  let connect net ?latency ~src:srcaddr ~dst ~port cb =
    let latency = Option.value latency ~default:net.default_latency in
    let attempt () =
      if Hashtbl.mem net.cuts (addr_pair srcaddr dst) then
        (* The SYN dies on the cut wire; the caller times out as if
           nothing listened there. *)
        ignore (Eventloop.after net.loop latency (fun () -> cb None))
      else
      match Hashtbl.find_opt net.listeners (key dst port) with
      | Some l when l.l_open ->
        net.ephemeral <- net.ephemeral + 1;
        let sport = net.ephemeral in
        let client =
          { net; latency; ep_local = (srcaddr, sport); ep_remote = (dst, port);
            peer = None; ep_open = true;
            recv_cb = (fun _ -> ()); close_cb = (fun () -> ());
            inflight = Queue.create () }
        in
        let server =
          { net; latency; ep_local = (dst, port); ep_remote = (srcaddr, sport);
            peer = Some client; ep_open = true;
            recv_cb = (fun _ -> ()); close_cb = (fun () -> ());
            inflight = Queue.create () }
        in
        client.peer <- Some server;
        net.streams <- client :: server :: net.streams;
        (* SYN-ACK: the client learns of success one more latency
           later. Schedule this before invoking the accept callback so
           that, at equal deadlines, the client attaches its receive
           handler before any data the server sends from inside its
           accept callback can arrive. *)
        ignore (Eventloop.after net.loop latency (fun () -> cb (Some client)));
        l.accept_cb server
      | _ -> ignore (Eventloop.after net.loop latency (fun () -> cb None))
    in
    (* SYN takes one latency to reach the listener. *)
    ignore (Eventloop.after net.loop latency attempt)

  (* Queue one segment toward [peer] and schedule one delivery; the
     timer delivers whatever is at the head, preserving send order. *)
  let transmit net peer latency seg =
    Queue.push seg peer.inflight;
    ignore
      (Eventloop.after net.loop latency (fun () ->
           match Queue.take_opt peer.inflight with
           | Some (Seg_data d) -> if peer.ep_open then peer.recv_cb d
           | Some Seg_close ->
             if peer.ep_open then begin
               peer.ep_open <- false;
               peer.close_cb ()
             end
           | None -> ()))

  let send ep data =
    if ep.ep_open then
      match ep.peer with
      | Some peer -> transmit ep.net peer ep.latency (Seg_data data)
      | None -> ()

  let on_receive ep cb = ep.recv_cb <- cb
  let on_close ep cb = ep.close_cb <- cb

  (* The close notification rides the stream behind any data still in
     flight, like a FIN. *)
  let close ep =
    if ep.ep_open then begin
      ep.ep_open <- false;
      match ep.peer with
      | Some peer -> transmit ep.net peer ep.latency Seg_close
      | None -> ()
    end

  let sever ep =
    ep.ep_open <- false;
    match ep.peer with
    | Some peer ->
      peer.ep_open <- false;
      (* Whatever was in flight dies with the wire. *)
      Queue.clear peer.inflight;
      Queue.clear ep.inflight
    | None -> ()

  let is_open ep = ep.ep_open
  let local_addr ep = fst ep.ep_local
  let remote_addr ep = fst ep.ep_remote
end

let cut_link ?(reset = false) t ~a ~b =
  Hashtbl.replace t.cuts (addr_pair a b) ();
  let pair = addr_pair a b in
  let crossing ep =
    ep.ep_open && addr_pair (fst ep.ep_local) (fst ep.ep_remote) = pair
  in
  List.iter
    (fun ep ->
      if crossing ep then
        if reset then begin
          (* A detectable link-down: both ends learn immediately, as
             if the interface went down under the socket. *)
          (match ep.peer with
          | Some peer when peer.ep_open ->
            peer.ep_open <- false;
            Queue.clear peer.inflight;
            peer.close_cb ()
          | _ -> ());
          if ep.ep_open then begin
            ep.ep_open <- false;
            Queue.clear ep.inflight;
            ep.close_cb ()
          end
        end
        else Stream.sever ep)
    t.streams;
  (* Compact the registry while we're here; closed endpoints can never
     matter again. *)
  t.streams <- List.filter (fun ep -> ep.ep_open) t.streams

let heal_link t ~a ~b = Hashtbl.remove t.cuts (addr_pair a b)

module Dgram = struct
  type socket = dgram_socket

  let bind net ~addr ~port =
    let k = key addr port in
    if Hashtbl.mem net.dsockets k then
      invalid_arg
        (Printf.sprintf "Netsim.Dgram.bind: %s:%d already bound"
           (Ipv4.to_string addr) port);
    let s =
      { dnet = net; d_local = (addr, port); d_open = true;
        drecv_cb = (fun ~src:_ ~sport:_ _ -> ()) }
    in
    Hashtbl.replace net.dsockets k s;
    s

  let on_receive s cb = s.drecv_cb <- cb

  let sendto s ?latency ?(loss = 0.0) ~dst ~dport data =
    if not s.d_open then ()
    else begin
      let net = s.dnet in
      let latency = Option.value latency ~default:net.default_latency in
      let cut = Hashtbl.mem net.cuts (addr_pair (fst s.d_local) dst) in
      let dropped = cut || (loss > 0.0 && Rng.float net.loss_rng < loss) in
      if dropped then
        Log.debug (fun m ->
            m "dropping datagram to %s:%d" (Ipv4.to_string dst) dport)
      else
        let srcaddr, sport = s.d_local in
        ignore
          (Eventloop.after net.loop latency (fun () ->
               match Hashtbl.find_opt net.dsockets (key dst dport) with
               | Some d when d.d_open -> d.drecv_cb ~src:srcaddr ~sport data
               | _ -> ()))
    end

  let close s =
    if s.d_open then begin
      s.d_open <- false;
      let addr, port = s.d_local in
      Hashtbl.remove s.dnet.dsockets (key addr port)
    end

  let local_addr s = fst s.d_local
  let local_port s = snd s.d_local
end
