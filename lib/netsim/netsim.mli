(** Discrete-event network simulator.

    The paper's experiments run real BGP/RIP sessions between routers;
    we have no testbed, so protocol components in this repo exchange
    their (real, RFC-conformant) wire messages over this simulated
    network instead. It provides TCP-like reliable ordered byte streams
    (BGP sessions) and UDP-like datagrams (RIP), with configurable
    per-path latency and optional datagram loss, all driven by an
    {!Eventloop.t} — normally one with a simulated clock, which makes
    multi-minute convergence experiments run in milliseconds and
    deterministically. *)

type t

val create : ?default_latency:float -> Eventloop.t -> t
(** [default_latency] (seconds, default 0.001) applies to paths that
    don't specify their own. *)

val eventloop : t -> Eventloop.t

(** Reliable ordered byte-stream channels (TCP stand-in). *)
module Stream : sig
  type endpoint
  type listener

  val listen : t -> addr:Ipv4.t -> port:int -> (endpoint -> unit) -> listener
  (** Accept connections to [(addr, port)]; the callback receives the
      server-side endpoint of each new connection.
      @raise Invalid_argument if the address/port is already bound. *)

  val unlisten : listener -> unit

  val connect :
    t -> ?latency:float -> src:Ipv4.t -> dst:Ipv4.t -> port:int ->
    (endpoint option -> unit) -> unit
  (** Attempt a connection; the callback fires one round-trip later
      with the client endpoint, or [None] if nothing listens there. *)

  val send : endpoint -> string -> unit
  (** Queue bytes for in-order delivery to the peer after the path
      latency. Delivery is FIFO in send order even when several
      messages share a deadline and the simulated loop's timer
      tie-break would shuffle their timers — a stream never reorders,
      like TCP. Bytes sent on a closed endpoint are dropped. *)

  val on_receive : endpoint -> (string -> unit) -> unit
  val on_close : endpoint -> (unit -> unit) -> unit

  val close : endpoint -> unit
  (** Close both directions; the notification rides the stream behind
      any data still in flight (like a FIN), so the peer's close
      callback fires after the path latency and after all sent data
      has been delivered. Idempotent. *)

  val sever : endpoint -> unit
  (** Cut the connection {e silently}: both ends stop delivering and
      neither close callback fires — the failure mode that only
      protocol keep-alive/hold timers can detect. *)

  val is_open : endpoint -> bool
  val local_addr : endpoint -> Ipv4.t
  val remote_addr : endpoint -> Ipv4.t
end

(** Datagram channels (UDP stand-in). *)
module Dgram : sig
  type socket

  val bind : t -> addr:Ipv4.t -> port:int -> socket
  (** @raise Invalid_argument if already bound. *)

  val on_receive : socket -> (src:Ipv4.t -> sport:int -> string -> unit) -> unit

  val sendto :
    socket -> ?latency:float -> ?loss:float -> dst:Ipv4.t -> dport:int ->
    string -> unit
  (** Deliver the datagram to whatever socket is bound at
      [(dst, dport)] after the latency; silently dropped if nothing is
      bound or the Bernoulli [loss] trial (default 0) fires. *)

  val close : socket -> unit
  val local_addr : socket -> Ipv4.t
  val local_port : socket -> int
end

val set_loss_seed : t -> int -> unit
(** Reseed the deterministic generator behind datagram loss. *)

(** {1 Link-level faults}

    A link is the unordered pair of the two interface addresses that
    face each other. Cutting it severs every live stream whose two
    endpoint addresses are that pair, makes new connects between the
    pair fail, and silently drops datagrams between the pair, until
    the link heals. *)

val cut_link : ?reset:bool -> t -> a:Ipv4.t -> b:Ipv4.t -> unit
(** Take the [a]–[b] link down. By default crossing streams are cut
    {e silently} (like {!Stream.sever}: only keep-alive/hold timers
    can detect it). With [reset:true] both ends' close callbacks fire
    immediately — a detectable link-down, as when the interface goes
    down under the socket. Idempotent. *)

val heal_link : t -> a:Ipv4.t -> b:Ipv4.t -> unit
(** Bring the [a]–[b] link back up. Streams severed by the cut stay
    dead — the owners must reconnect. Idempotent. *)

val link_cut : t -> a:Ipv4.t -> b:Ipv4.t -> bool
