(** The scanner-based BGP baseline for Figure 13.

    This deliberately reproduces the design the paper argues {e
    against}: a closely-coupled router in the style of Cisco IOS and
    Zebra/Quagga, where incoming updates are merely stored and a
    periodic {e route scanner} (default every 30 s) later walks the
    table, runs the decision process, and propagates the results.
    Routes received just after a scan wait nearly the full interval —
    the sawtooth in Figure 13.

    It speaks the same RFC 4271 messages over the same simulated
    network as {!Bgp_process} and reuses the same decision ladder, so
    the only variable in the comparison is event-driven versus
    scanner-based processing. *)

type t

val create :
  Eventloop.t -> Netsim.t -> local_as:int -> bgp_id:Ipv4.t ->
  ?scan_interval:float -> ?scan_offset:float -> ?bgp_port:int -> unit -> t
(** [scan_interval] defaults to 30 s; [scan_offset] phase-shifts the
    first scan (distinguishing "Cisco" from "Quagga" in the figure). *)

val add_peer :
  t -> peer_addr:Ipv4.t -> local_addr:Ipv4.t -> peer_as:int ->
  ?passive:bool -> unit -> unit

val start : t -> unit

val originate : t -> Ipv4net.t -> unit
(** Takes effect at the next scan, like everything else here. *)

val route_count : t -> int
(** Best routes as of the last scan. *)

val scans_performed : t -> int
val established_count : t -> int
val peer_state : t -> Ipv4.t -> Peer_fsm.state option
val shutdown : t -> unit
