let src = Logs.Src.create "xorp.scanner" ~doc:"scanner-based BGP baseline"

module Log = (val Logs.src_log src : Logs.LOG)

type speer = {
  s_cfg_peer : Ipv4.t;
  s_cfg_local : Ipv4.t;
  s_peer_as : int;
  s_info : Bgp_types.peer_info;
  s_fsm : Peer_fsm.t;
  s_adj_in : (Ipv4net.t, Bgp_types.attrs) Hashtbl.t;
  s_adj_out : (Ipv4net.t, Bgp_types.attrs) Hashtbl.t;
  s_passive : bool;
  mutable s_retry : Eventloop.timer option;
  mutable s_synced : bool; (* full table sent since establishment? *)
}

type t = {
  loop : Eventloop.t;
  netsim : Netsim.t;
  local_as : int;
  bgp_id : Ipv4.t;
  bgp_port : int;
  scan_interval : float;
  scan_offset : float;
  peers : (int, speer) Hashtbl.t;
  local_nets : (Ipv4net.t, unit) Hashtbl.t;
  (* best routes as of the last scan: net -> (attrs, from peer_id) *)
  table : (Ipv4net.t, Bgp_types.attrs * int) Hashtbl.t;
  mutable next_peer_id : int;
  mutable dirty : bool;
  mutable scans : int;
  mutable started : bool;
  mutable listener : Netsim.Stream.listener list;
}

let create loop netsim ~local_as ~bgp_id ?(scan_interval = 30.0)
    ?(scan_offset = 0.0) ?(bgp_port = 179) () =
  { loop; netsim; local_as; bgp_id; bgp_port; scan_interval; scan_offset;
    peers = Hashtbl.create 8; local_nets = Hashtbl.create 16;
    table = Hashtbl.create 1024; next_peer_id = 0; dirty = false;
    scans = 0; started = false; listener = [] }

let find_peer t addr = Hashtbl.find_opt t.peers (Ipv4.to_int addr)

(* Incoming updates are only stored; processing waits for the scanner.
   This is the crucial difference from the event-driven design. *)
let handle_update t peer (msg : Bgp_packet.msg) =
  match msg with
  | Bgp_packet.Update { withdrawn; attrs; nlri } ->
    List.iter (fun net -> Hashtbl.remove peer.s_adj_in net) withdrawn;
    (match attrs with
     | Some a when nlri <> [] ->
       if not (Aspath.contains a.Bgp_types.aspath t.local_as) then
         List.iter (fun net -> Hashtbl.replace peer.s_adj_in net a) nlri
     | _ -> ());
    t.dirty <- true
  | _ -> ()

let rec schedule_redial t peer =
  (match peer.s_retry with Some tm -> Eventloop.cancel tm | None -> ());
  peer.s_retry <- Some (Eventloop.after t.loop 5.0 (fun () -> dial t peer))

and dial t peer =
  if Peer_fsm.state peer.s_fsm = Peer_fsm.Idle then begin
    Peer_fsm.start_active peer.s_fsm;
    Netsim.Stream.connect t.netsim ~src:peer.s_cfg_local ~dst:peer.s_cfg_peer
      ~port:t.bgp_port (fun ep ->
          match ep with
          | Some ep -> attach t peer ep
          | None ->
            Peer_fsm.transport_failed peer.s_fsm;
            schedule_redial t peer)
  end

and attach _t peer ep =
  Netsim.Stream.on_receive ep (fun data -> Peer_fsm.recv peer.s_fsm data);
  Netsim.Stream.on_close ep (fun () -> Peer_fsm.transport_closed peer.s_fsm);
  Peer_fsm.transport_up peer.s_fsm
    { Peer_fsm.tr_send = (fun d -> Netsim.Stream.send ep d);
      tr_close = (fun () -> Netsim.Stream.close ep) }

let add_peer t ~peer_addr ~local_addr ~peer_as ?passive () =
  t.next_peer_id <- t.next_peer_id + 1;
  let passive =
    match passive with
    | Some p -> p
    | None -> Ipv4.compare local_addr peer_addr > 0
  in
  let info =
    { Bgp_types.peer_id = t.next_peer_id; peer_addr; peer_as;
      kind =
        (if peer_as = t.local_as then Bgp_types.Ibgp else Bgp_types.Ebgp);
      peer_bgp_id = peer_addr }
  in
  let rec peer =
    lazy
      { s_cfg_peer = peer_addr; s_cfg_local = local_addr; s_peer_as = peer_as;
        s_info = info;
        s_fsm =
          Peer_fsm.create t.loop
            { Peer_fsm.local_as = t.local_as; bgp_id = t.bgp_id;
              peer_as; hold_time = 90.0 }
            {
              Peer_fsm.on_established =
                (fun () ->
                   let p = Lazy.force peer in
                   p.s_synced <- false;
                   Hashtbl.reset p.s_adj_out;
                   t.dirty <- true);
              on_update = (fun msg -> handle_update t (Lazy.force peer) msg);
              on_down =
                (fun _reason ->
                   let p = Lazy.force peer in
                   Hashtbl.reset p.s_adj_in;
                   t.dirty <- true;
                   if not p.s_passive then schedule_redial t p
                   else Peer_fsm.start_passive p.s_fsm);
            };
        s_adj_in = Hashtbl.create 1024; s_adj_out = Hashtbl.create 1024;
        s_passive = passive; s_retry = None; s_synced = true }
  in
  let peer = Lazy.force peer in
  Hashtbl.replace t.peers (Ipv4.to_int peer_addr) peer;
  if t.started then (if passive then Peer_fsm.start_passive peer.s_fsm else dial t peer)

let originate t net =
  Hashtbl.replace t.local_nets net ();
  t.dirty <- true

(* --- the scanner itself ------------------------------------------------ *)

let local_attrs t =
  { (Bgp_types.default_attrs ~nexthop:t.bgp_id) with
    Bgp_types.localpref = Some 100 }

let local_info t =
  Bgp_types.local_peer_info ~local_as:t.local_as ~bgp_id:t.bgp_id

(* Recompute every best route, then push deltas to every peer —
   one big batch, the way periodic scanners behave. *)
let scan t =
  t.scans <- t.scans + 1;
  let candidates : (Ipv4net.t, (Bgp_types.route * Bgp_types.peer_info) list) Hashtbl.t =
    Hashtbl.create (Hashtbl.length t.table + 64)
  in
  let add_candidate net route info =
    let cur = Option.value (Hashtbl.find_opt candidates net) ~default:[] in
    Hashtbl.replace candidates net ((route, info) :: cur)
  in
  Hashtbl.iter
    (fun net () ->
       add_candidate net
         { Bgp_types.net; attrs = local_attrs t; peer_id = 0;
           igp_metric = Some 0 }
         (local_info t))
    t.local_nets;
  Hashtbl.iter
    (fun _ peer ->
       if Peer_fsm.state peer.s_fsm = Peer_fsm.Established then
         Hashtbl.iter
           (fun net attrs ->
              add_candidate net
                { Bgp_types.net; attrs; peer_id = peer.s_info.peer_id;
                  igp_metric = Some 0 }
                peer.s_info)
           peer.s_adj_in)
    t.peers;
  (* Best per net, reusing the standard decision ladder. *)
  let best : (Ipv4net.t, Bgp_types.attrs * int) Hashtbl.t =
    Hashtbl.create (Hashtbl.length candidates)
  in
  Hashtbl.iter
    (fun net cands ->
       match cands with
       | [] -> ()
       | first :: rest ->
         let (w, _) =
           List.fold_left
             (fun (br, bi) (r, i) ->
                if Bgp_decision.better r i br bi then (r, i) else (br, bi))
             first rest
         in
         Hashtbl.replace best net (w.Bgp_types.attrs, w.Bgp_types.peer_id))
    candidates;
  (* Replace the main table. *)
  Hashtbl.reset t.table;
  Hashtbl.iter (fun net v -> Hashtbl.replace t.table net v) best;
  (* Push per-peer deltas against each Adj-RIB-Out. *)
  Hashtbl.iter
    (fun _ peer ->
       if Peer_fsm.state peer.s_fsm = Peer_fsm.Established then begin
         let transform (attrs : Bgp_types.attrs) =
           match peer.s_info.kind with
           | Bgp_types.Ebgp ->
             if Aspath.contains attrs.aspath peer.s_peer_as then None
             else
               Some
                 { attrs with
                   Bgp_types.aspath = Aspath.prepend t.local_as attrs.aspath;
                   nexthop = peer.s_cfg_local; localpref = None; med = None }
           | Bgp_types.Ibgp -> Some attrs
         in
         let announce = ref [] in (* (attrs, net) *)
         let withdraw = ref [] in
         Hashtbl.iter
           (fun net (attrs, from_id) ->
              if from_id <> peer.s_info.peer_id then
                match transform attrs with
                | Some out ->
                  (match Hashtbl.find_opt peer.s_adj_out net with
                   | Some prev when Bgp_types.attrs_equal prev out -> ()
                   | _ ->
                     Hashtbl.replace peer.s_adj_out net out;
                     announce := (out, net) :: !announce)
                | None -> ())
           t.table;
         Hashtbl.iter
           (fun net _ ->
              if not (Hashtbl.mem t.table net) then withdraw := net :: !withdraw)
           peer.s_adj_out;
         List.iter (fun net -> Hashtbl.remove peer.s_adj_out net) !withdraw;
         peer.s_synced <- true;
         if !withdraw <> [] then
           ignore
             (Peer_fsm.send_update peer.s_fsm
                (Bgp_packet.Update
                   { withdrawn = !withdraw; attrs = None; nlri = [] }));
         (* Group announcements by attribute set. *)
         let groups : (Bgp_types.attrs * Ipv4net.t list ref) list ref = ref [] in
         List.iter
           (fun (attrs, net) ->
              match
                List.find_opt
                  (fun (a, _) -> Bgp_types.attrs_equal a attrs)
                  !groups
              with
              | Some (_, nets) -> nets := net :: !nets
              | None -> groups := (attrs, ref [ net ]) :: !groups)
           !announce;
         List.iter
           (fun (attrs, nets) ->
              let rec chunks = function
                | [] -> ()
                | l ->
                  let rec take n acc = function
                    | rest when n = 0 -> (List.rev acc, rest)
                    | x :: rest -> take (n - 1) (x :: acc) rest
                    | [] -> (List.rev acc, [])
                  in
                  let head, rest = take 700 [] l in
                  ignore
                    (Peer_fsm.send_update peer.s_fsm
                       (Bgp_packet.Update
                          { withdrawn = []; attrs = Some attrs; nlri = head }));
                  chunks rest
              in
              chunks !nets)
           !groups
       end)
    t.peers;
  t.dirty <- false

let start t =
  if not t.started then begin
    t.started <- true;
    (* One listener per distinct local address. *)
    let seen = Hashtbl.create 4 in
    Hashtbl.iter
      (fun _ peer ->
         let key = Ipv4.to_int peer.s_cfg_local in
         if not (Hashtbl.mem seen key) then begin
           Hashtbl.replace seen key ();
           let l =
             Netsim.Stream.listen t.netsim ~addr:peer.s_cfg_local
               ~port:t.bgp_port (fun ep ->
                   match find_peer t (Netsim.Stream.remote_addr ep) with
                   | Some p -> attach t p ep
                   | None -> Netsim.Stream.close ep)
           in
           t.listener <- l :: t.listener
         end)
      t.peers;
    Hashtbl.iter
      (fun _ peer ->
         if peer.s_passive then Peer_fsm.start_passive peer.s_fsm
         else dial t peer)
      t.peers;
    (* The scanner: fires every scan_interval regardless of load,
       starting at scan_offset. *)
    ignore
      (Eventloop.after t.loop t.scan_offset (fun () ->
           scan t;
           ignore
             (Eventloop.periodic t.loop t.scan_interval (fun () ->
                  if t.started then begin
                    scan t;
                    true
                  end
                  else false))))
  end

let route_count t = Hashtbl.length t.table
let scans_performed t = t.scans

let established_count t =
  Hashtbl.fold
    (fun _ p acc ->
       if Peer_fsm.state p.s_fsm = Peer_fsm.Established then acc + 1 else acc)
    t.peers 0

let peer_state t addr = Option.map (fun p -> Peer_fsm.state p.s_fsm) (find_peer t addr)

let shutdown t =
  t.started <- false;
  Hashtbl.iter
    (fun _ peer ->
       (match peer.s_retry with Some tm -> Eventloop.cancel tm | None -> ());
       Peer_fsm.stop peer.s_fsm)
    t.peers;
  List.iter Netsim.Stream.unlisten t.listener;
  t.listener <- [];
  Log.debug (fun m -> m "scanner router shut down")
