(** camlXORP: the public umbrella API.

    An OCaml reproduction of the XORP extensible router control plane
    (Handley, Kohler, Ghosh, Hodson, Radoslavov — "Designing Extensible
    IP Router Software", NSDI 2005).

    The constituent libraries are unwrapped, so their modules
    ({!Eventloop}, {!Finder}, {!Xrl_router}, {!Rib}, {!Bgp_process},
    {!Rip_process}, {!Rtrmgr}, ...) are directly visible once
    [xorp_core] is linked. This module adds the version, a programmatic
    router builder for when a configuration file is overkill, and a
    pre-assembled "stack" record tying one router's components
    together. *)

val version : string

type stack = {
  finder : Finder.t;
  loop : Eventloop.t;
  net : Netsim.t;
  profiler : Profiler.t option;
  fea : Fea.t;
  rib : Rib.t;
  mutable bgp : Bgp_process.t option;
  mutable rip : Rip_process.t option;
}

val make_stack :
  ?profiling:bool ->
  ?interfaces:(string * Ipv4.t) list ->
  loop:Eventloop.t -> net:Netsim.t -> unit -> stack
(** FEA + RIB on a fresh Finder, with connected /24 routes for each
    interface. Protocols are added with {!add_bgp} / {!add_rip}. *)

val add_bgp :
  stack -> local_as:int -> bgp_id:Ipv4.t ->
  ?peers:Bgp_process.peer_config list -> unit -> Bgp_process.t
(** Create, configure and start a BGP process on the stack. *)

val add_rip : stack -> Rip_process.config -> Rip_process.t

val shutdown_stack : stack -> unit

val run_stacks : Eventloop.t -> seconds:float -> unit
(** Advance the shared event loop by [seconds] (convenience alias for
    {!Eventloop.run_until_time} from "now"). *)
