let version = "1.0.0"

type stack = {
  finder : Finder.t;
  loop : Eventloop.t;
  net : Netsim.t;
  profiler : Profiler.t option;
  fea : Fea.t;
  rib : Rib.t;
  mutable bgp : Bgp_process.t option;
  mutable rip : Rip_process.t option;
}

let make_stack ?(profiling = false) ?(interfaces = []) ~loop ~net () =
  let finder = Finder.create () in
  let profiler = if profiling then Some (Profiler.create loop) else None in
  let fea = Fea.create ?profiler ~interfaces ~netsim:net finder loop () in
  let rib = Rib.create ?profiler finder loop () in
  List.iter
    (fun (_, a) ->
       match
         Rib.add_route rib ~protocol:"connected" ~net:(Ipv4net.make a 24)
           ~nexthop:Ipv4.zero ()
       with
       | Ok () | Error _ -> ())
    interfaces;
  { finder; loop; net; profiler; fea; rib; bgp = None; rip = None }

let add_bgp stack ~local_as ~bgp_id ?(peers = []) () =
  let bgp =
    Bgp_process.create ?profiler:stack.profiler stack.finder stack.loop
      ~netsim:stack.net ~local_as ~bgp_id ()
  in
  List.iter (Bgp_process.add_peer bgp) peers;
  Bgp_process.start bgp;
  stack.bgp <- Some bgp;
  bgp

let add_rip stack config =
  let rip =
    Rip_process.create ?profiler:stack.profiler stack.finder stack.loop config
  in
  Rip_process.start rip;
  stack.rip <- Some rip;
  rip

let shutdown_stack stack =
  Option.iter Rip_process.shutdown stack.rip;
  Option.iter Bgp_process.shutdown stack.bgp;
  Rib.shutdown stack.rib;
  Fea.shutdown stack.fea

let run_stacks loop ~seconds =
  Eventloop.run_until_time loop (Eventloop.now loop +. seconds)
