(** Sharded BGP→RIB pipeline: the decision and route-arbitration
    stages partitioned by prefix range across OCaml domains.

    The staged pipeline of paper §5.1 processes route changes for
    different prefixes independently — nothing in the decision process
    or the RIB's merge stages couples two prefixes except nexthop
    resolution, which reads only internal (IGP) routes. This module
    exploits that: the prefix space is split into [shards] contiguous
    trie-aligned ranges ({!Ptree.shard_of}), and each range's decision
    + arbitration state lives on a dedicated worker domain. All
    cross-domain communication is message passing over two-lane
    {!Mailbox}es — operations in, winner deltas out — so the per-prefix
    FIFO guard of §5.1.2 and the urgent/bulk lanes hold per shard by
    construction, and no route state is ever shared mutably between
    domains (docs/CONCURRENCY.md).

    Each worker runs a fused replica of the per-range pipeline tail:
    BGP decision (the {!Bgp_decision.better} ladder over per-peer
    candidates), protocol arbitration by administrative distance, and
    the external/internal gate (an EGP route is usable only while its
    nexthop resolves through the internal winners). Internal-protocol
    changes are broadcast to every shard — any shard may need them to
    gate its external routes — while BGP and external per-prefix
    operations go to the owning shard only.

    Winner deltas flow back through one merged outbox into the main
    event loop ({!Eventloop.post} wakeup) and are applied to the
    process mirrors ({!Bgp_process.apply_winner_delta},
    {!Rib.apply_winner_delta}), from which the unchanged downstream
    stages — fanout, export branches, register, redistribution, FEA
    sink — carry on exactly as in the single-domain pipeline. In
    particular a BGP decision winner still reaches the RIB over the
    fanout's RIB branch and the RIB's XRL boundary; the RIB then
    dispatches it back to the owner shard as an ebgp/ibgp origin
    operation, so the arbitration inputs, the per-protocol origin
    bookkeeping and every single-domain invariant are preserved
    verbatim under sharding. *)

type t
(** A pool of shard workers bound to one main event loop. *)

val create : ?shards:int -> Eventloop.t -> unit -> t
(** [create ~shards loop ()] spawns [shards] worker domains (default
    4), each owning one prefix range. The calling domain must be the
    one driving [loop]: winner deltas are applied from [loop]
    callbacks. @raise Invalid_argument if [shards < 1]. *)

val shards : t -> int
(** Number of worker domains (and prefix ranges). *)

(** {1 Wiring}

    The dispatch functions are passed to {!Bgp_process.create} and
    {!Rib.create} as their [shard_dispatch] arguments; the connect
    functions register the destinations for the returning winner
    deltas. Wire both before any route flows. *)

val bgp_dispatch : t -> lane:Laneq.lane -> Bgp_decision.shard_op -> unit
(** Forward a decision-stage operation into the pool: route operations
    to the owner shard of their prefix, peer attach/detach metadata
    broadcast to every shard. [lane] is the urgent/bulk lane the
    operation rides, preserved end to end. *)

val rib_dispatch : t -> lane:Laneq.lane -> Rib.shard_op -> unit
(** Forward a RIB origin-table operation into the pool: internal
    (IGP) protocols broadcast to every shard — each shard needs them
    to resolve the nexthops gating its external routes — external
    protocols to the owner shard only. *)

val connect_bgp : t -> Bgp_process.t -> unit
(** Deliver BGP decision-winner deltas to [bgp]'s mirror
    ({!Bgp_process.apply_winner_delta}), and broadcast a decision-state
    reset to every worker (bulk lane, so stragglers from a previous
    process are cleared with it): [bgp] may be a reborn process whose
    peers will resend their sessions, and stale candidates from the old
    process must not survive into the rebuilt decision state.
    RIB-rebirth resync needs no special wiring: BGP replays the
    mirror's winners over the ordinary RIB branch, exactly as in
    single-domain mode. *)

val connect_rib : t -> Rib.t -> unit
(** Deliver route-arbitration winner deltas to [rib]'s register stage
    ({!Rib.apply_winner_delta}). *)

(** {1 Synchronisation} *)

val quiesce : ?timeout_s:float -> t -> unit
(** Barrier: block (driving [loop]) until every operation dispatched
    so far has been processed by its worker and every resulting winner
    delta has been applied on the loop's domain. Downstream deferred
    work scheduled by those applications (FEA flushes, XRL replies) is
    {e not} awaited — run the loop to idle afterwards as usual. Safe in
    both loop modes; the simulation clock is not advanced.
    @raise Failure on timeout (default 30 s) or if a worker died. *)

val replay : t -> unit
(** Ask every worker to re-emit its current winners as deltas (bulk
    lane). Appliers diff against their mirrors, so replay is
    idempotent; {!connect_bgp} installs this as the RIB-rebirth resync
    path. *)

val backlog : t -> int
(** Operations and deltas currently in flight (all inboxes plus the
    outbox); [0] once quiescent. *)

val shutdown : t -> unit
(** Close the inboxes, join the worker domains, and apply any deltas
    still in the outbox. The pool is unusable afterwards (dispatches
    are dropped). Idempotent. *)

(** {1 Per-range engine}

    The pure decision + arbitration replica each worker runs, exposed
    for the property tests that check a sharded run against the
    single-domain pipeline (test/test_shard.ml). Not thread-safe; a
    worker owns its engine exclusively. *)
module Engine : sig
  type t

  type emit = {
    emit_bgp : Ipv4net.t -> Bgp_types.route option -> unit;
        (** BGP decision winner changed for a prefix this engine owns. *)
    emit_rib : Ipv4net.t -> Rib_route.t option -> unit;
        (** Arbitrated RIB winner changed for a prefix this engine
            owns. *)
  }

  val create : shard:int -> shards:int -> t
  (** An empty engine owning range [shard] of [shards]
      ({!Ptree.shard_of}). *)

  val apply_bgp : t -> emit:emit -> Bgp_decision.shard_op -> unit
  (** Process one decision-stage operation. Peer metadata is accepted
      for any range; route operations only mutate state (and emit) when
      the engine owns the prefix. A changed winner is emitted, not fed
      into the arbitration side — it re-enters via {!apply_rib} once
      the RIB has carried it across its XRL boundary. *)

  val apply_rib : t -> emit:emit -> Rib.shard_op -> unit
  (** Process one origin-table operation. Internal-protocol routes are
      absorbed for the whole address space (they gate external routes
      anywhere in the engine's range); external routes only for the
      owned range. *)

  val replay : t -> emit:emit -> unit
  (** Re-emit every current winner in the owned range. *)

  val reset_bgp : t -> unit
  (** Discard all decision-stage state (peer metadata, candidates,
      decision winners) without emitting deltas: the reborn BGP process
      this serves starts with an empty mirror, and the RIB flushes dead
      protocols' origins itself. Arbitration state is untouched. *)

  val bgp_winner : t -> Ipv4net.t -> Bgp_types.route option
  (** Current decision winner for a prefix (tests). *)

  val rib_winner : t -> Ipv4net.t -> Rib_route.t option
  (** Current arbitrated winner for a prefix (tests). *)

  val bgp_winner_count : t -> int
  (** Decision winners held (tests). *)

  val rib_winner_count : t -> int
  (** Arbitrated winners held (tests). *)
end
