(* Sharded BGP->RIB pipeline (docs/CONCURRENCY.md).

   Ownership: each worker domain exclusively owns one Engine (all
   route state for its prefix range). The main domain owns the
   mailboxes' identities, the pool record, and everything downstream
   of the mirrors. The only values crossing domains are the immutable
   op/delta messages inside the mailboxes; neither side retains or
   mutates a message after pushing it. *)

let internal_protocols = [ "connected"; "static"; "ospf"; "rip" ]
let is_internal protocol = List.mem protocol internal_protocols

(* --- per-range engine ------------------------------------------------ *)

module Engine = struct
  (* A fused replica of the per-range pipeline tail: BGP decision over
     per-peer candidates, per-protocol arbitration by administrative
     distance, and the extint gate (an external route is usable only
     while its nexthop resolves through the internal winners).
     Internal routes are absorbed for the whole address space — any
     owned external route may resolve via them — everything else only
     for the owned range. *)
  type t = {
    shard : int;
    nshards : int;
    (* peers currently attached to the decision stage; candidates from
       detached peers are skipped, as in Bgp_decision.decision_table *)
    infos : (int, Bgp_types.peer_info) Hashtbl.t;
    (* per-prefix BGP candidates, one per peer branch *)
    cands : (Ipv4net.t, (int, Bgp_types.route) Hashtbl.t) Hashtbl.t;
    bgp_winners : (Ipv4net.t, Bgp_types.route) Hashtbl.t;
    (* per-prefix internal-protocol candidates and their arbitrated
       winner; full address space *)
    int_cands : (Ipv4net.t, (string, Rib_route.t) Hashtbl.t) Hashtbl.t;
    int_best : Rib_route.t Ptree.t;
    (* per-prefix external-protocol candidates (ebgp/ibgp origin
       operations, dispatched by the RIB when the decision winners
       arrive back over its XRL boundary) and the current min-AD pick;
       owned range only *)
    ext_cands : (Ipv4net.t, (string, Rib_route.t) Hashtbl.t) Hashtbl.t;
    ext_pick : (Ipv4net.t, Rib_route.t) Hashtbl.t;
    (* nexthop -> owned nets whose ext pick uses it: which gates to
       recheck when internal routes covering that nexthop change *)
    by_nexthop : (int, (Ipv4net.t, unit) Hashtbl.t) Hashtbl.t;
    rib_winners : (Ipv4net.t, Rib_route.t) Hashtbl.t;
  }

  type emit = {
    emit_bgp : Ipv4net.t -> Bgp_types.route option -> unit;
    emit_rib : Ipv4net.t -> Rib_route.t option -> unit;
  }

  let create ~shard ~shards =
    if shards < 1 || shard < 0 || shard >= shards then
      invalid_arg "Shard.Engine.create";
    { shard; nshards = shards;
      infos = Hashtbl.create 16;
      cands = Hashtbl.create 4096;
      bgp_winners = Hashtbl.create 4096;
      int_cands = Hashtbl.create 64;
      int_best = Ptree.create ();
      ext_cands = Hashtbl.create 4096;
      ext_pick = Hashtbl.create 4096;
      by_nexthop = Hashtbl.create 64;
      rib_winners = Hashtbl.create 4096 }

  let owns t net = Ptree.shard_of ~shards:t.nshards net = t.shard

  let opt_rr_equal a b =
    match a, b with
    | None, None -> true
    | Some a, Some b -> Rib_route.equal a b
    | _ -> false

  (* The decision process over this prefix's candidates: the same
     tie-break ladder the single-domain decision_table pulls through
     its parents, skipping unresolved routes and detached peers. The
     ladder is a strict total order over distinct peers, so Hashtbl
     fold order cannot affect the result. *)
  let best_bgp t net =
    match Hashtbl.find_opt t.cands net with
    | None -> None
    | Some tbl ->
      Hashtbl.fold
        (fun _ (r : Bgp_types.route) acc ->
           if r.igp_metric = None then acc
           else
             match Hashtbl.find_opt t.infos r.peer_id with
             | None -> acc
             | Some info ->
               (match acc with
                | None -> Some (r, info)
                | Some (b, ib) ->
                  if Bgp_decision.better r info b ib then Some (r, info)
                  else acc))
        tbl None
      |> Option.map fst

  (* Arbitration among same-side protocol candidates: lowest admin
     distance wins, protocol name as a deterministic tie-break (default
     distances never tie). *)
  let min_ad (tbl : (string, Rib_route.t) Hashtbl.t) =
    Hashtbl.fold
      (fun _ (r : Rib_route.t) acc ->
         match acc with
         | None -> Some r
         | Some (b : Rib_route.t) ->
           if
             r.admin_distance < b.admin_distance
             || (r.admin_distance = b.admin_distance
                 && compare r.protocol b.protocol < 0)
           then Some r
           else acc)
      tbl None

  let resolves t nexthop = Ptree.longest_match t.int_best nexthop <> None

  (* Final per-prefix arbitration, mirroring the merge/extint chain:
     internal winner vs externally-gated pick, internal wins ties. *)
  let arbitrate t emit net =
    if owns t net then begin
      let int_w = Ptree.find t.int_best net in
      let ext_w =
        match Hashtbl.find_opt t.ext_pick net with
        | Some (e : Rib_route.t) when resolves t e.nexthop -> Some e
        | _ -> None
      in
      let w =
        match int_w, ext_w with
        | None, x | x, None -> x
        | Some (i : Rib_route.t), Some (e : Rib_route.t) ->
          if i.admin_distance <= e.admin_distance then Some i else Some e
      in
      let old = Hashtbl.find_opt t.rib_winners net in
      if not (opt_rr_equal old w) then begin
        (match w with
         | Some n -> Hashtbl.replace t.rib_winners net n
         | None -> Hashtbl.remove t.rib_winners net);
        emit.emit_rib net w
      end
    end

  let nh_index_add t nexthop net =
    let key = Ipv4.to_int nexthop in
    let nets =
      match Hashtbl.find_opt t.by_nexthop key with
      | Some nets -> nets
      | None ->
        let nets = Hashtbl.create 4 in
        Hashtbl.replace t.by_nexthop key nets;
        nets
    in
    Hashtbl.replace nets net ()

  let nh_index_remove t nexthop net =
    let key = Ipv4.to_int nexthop in
    match Hashtbl.find_opt t.by_nexthop key with
    | None -> ()
    | Some nets ->
      Hashtbl.remove nets net;
      if Hashtbl.length nets = 0 then Hashtbl.remove t.by_nexthop key

  (* Recompute the external pick for an owned prefix after its
     candidate set changed, keep the nexthop index in step, and
     re-arbitrate. *)
  let refresh_ext_pick t emit net =
    let pick =
      match Hashtbl.find_opt t.ext_cands net with
      | None -> None
      | Some tbl -> min_ad tbl
    in
    let old = Hashtbl.find_opt t.ext_pick net in
    if not (opt_rr_equal old pick) then begin
      (match old with
       | Some (o : Rib_route.t) -> nh_index_remove t o.nexthop net
       | None -> ());
      match pick with
      | Some (p : Rib_route.t) ->
        nh_index_add t p.nexthop net;
        Hashtbl.replace t.ext_pick net p
      | None -> Hashtbl.remove t.ext_pick net
    end;
    arbitrate t emit net

  let ext_set t protocol net r =
    let tbl =
      match Hashtbl.find_opt t.ext_cands net with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 2 in
        Hashtbl.replace t.ext_cands net tbl;
        tbl
    in
    Hashtbl.replace tbl protocol r

  let ext_remove t protocol net =
    match Hashtbl.find_opt t.ext_cands net with
    | None -> ()
    | Some tbl ->
      Hashtbl.remove tbl protocol;
      if Hashtbl.length tbl = 0 then Hashtbl.remove t.ext_cands net

  (* A candidate changed for an owned prefix: rerun the decision and,
     on a winner change, emit the delta. The winner does not enter the
     arbitration side here — it travels to the main domain, through
     the BGP fanout's RIB branch and the RIB's XRL boundary, and comes
     back as an ebgp/ibgp origin operation ([apply_rib]); keeping that
     round trip preserves the single-domain structure (per-protocol
     origin bookkeeping, redistribution, invariants) unchanged. *)
  let recompute_bgp t emit net =
    let w = best_bgp t net in
    let old = Hashtbl.find_opt t.bgp_winners net in
    let changed =
      match old, w with
      | None, None -> false
      | Some o, Some n -> not (Bgp_types.route_equal o n)
      | _ -> true
    in
    if changed then begin
      (match w with
       | Some n -> Hashtbl.replace t.bgp_winners net n
       | None -> Hashtbl.remove t.bgp_winners net);
      emit.emit_bgp net w
    end

  let apply_bgp t ~emit (op : Bgp_decision.shard_op) =
    match op with
    | Bgp_decision.Shard_peer info ->
      Hashtbl.replace t.infos info.peer_id info
    | Bgp_decision.Shard_peer_gone peer_id ->
      (* Candidates are not purged: the peer's deletion stage streams
         per-route deletes through the normal path, and candidates
         without an attached peer are already invisible to the
         decision — the same contract as decision_table#remove_parent. *)
      Hashtbl.remove t.infos peer_id
    | Bgp_decision.Shard_add (r : Bgp_types.route) ->
      if owns t r.net then begin
        let tbl =
          match Hashtbl.find_opt t.cands r.net with
          | Some tbl -> tbl
          | None ->
            let tbl = Hashtbl.create 2 in
            Hashtbl.replace t.cands r.net tbl;
            tbl
        in
        Hashtbl.replace tbl r.peer_id r;
        recompute_bgp t emit r.net
      end
    | Bgp_decision.Shard_delete (r : Bgp_types.route) ->
      if owns t r.net then begin
        match Hashtbl.find_opt t.cands r.net with
        | None -> ()
        | Some tbl ->
          Hashtbl.remove tbl r.peer_id;
          if Hashtbl.length tbl = 0 then Hashtbl.remove t.cands r.net;
          recompute_bgp t emit r.net
      end

  (* An internal route changed at [net]: re-arbitrate [net] itself if
     owned, then recheck the gate of every owned external pick whose
     nexthop falls inside [net] — the extint recheck, scoped by the
     nexthop index. *)
  let recompute_int t emit net =
    let w =
      match Hashtbl.find_opt t.int_cands net with
      | None -> None
      | Some tbl -> min_ad tbl
    in
    let old = Ptree.find t.int_best net in
    if not (opt_rr_equal old w) then begin
      (match w with
       | Some r -> ignore (Ptree.insert t.int_best net r)
       | None -> ignore (Ptree.remove t.int_best net));
      arbitrate t emit net;
      let to_check = ref [] in
      Hashtbl.iter
        (fun nh nets ->
           if Ipv4net.contains_addr net (Ipv4.of_int nh) then
             Hashtbl.iter (fun n () -> to_check := n :: !to_check) nets)
        t.by_nexthop;
      List.iter (fun n -> arbitrate t emit n) !to_check
    end

  let apply_rib t ~emit (op : Rib.shard_op) =
    match op with
    | Rib.Shard_add (r : Rib_route.t) ->
      if is_internal r.protocol then begin
        let tbl =
          match Hashtbl.find_opt t.int_cands r.net with
          | Some tbl -> tbl
          | None ->
            let tbl = Hashtbl.create 2 in
            Hashtbl.replace t.int_cands r.net tbl;
            tbl
        in
        Hashtbl.replace tbl r.protocol r;
        recompute_int t emit r.net
      end
      else if owns t r.net then begin
        ext_set t r.protocol r.net r;
        refresh_ext_pick t emit r.net
      end
    | Rib.Shard_delete { protocol; net } ->
      if is_internal protocol then begin
        match Hashtbl.find_opt t.int_cands net with
        | None -> ()
        | Some tbl ->
          Hashtbl.remove tbl protocol;
          if Hashtbl.length tbl = 0 then Hashtbl.remove t.int_cands net;
          recompute_int t emit net
      end
      else if owns t net then begin
        ext_remove t protocol net;
        refresh_ext_pick t emit net
      end

  let replay t ~emit =
    Hashtbl.iter (fun net r -> emit.emit_bgp net (Some r)) t.bgp_winners;
    Hashtbl.iter (fun net r -> emit.emit_rib net (Some r)) t.rib_winners

  (* A reborn BGP process starts from nothing: its peers re-attach and
     re-send their tables, so every decision-stage candidate held for
     the old process is invalid — including ones the old process would
     have deleted had it lived (a route withdrawn while it was down).
     Silent clear: the new mirror is empty, so there is nothing to
     emit deltas against; the RIB's ebgp/ibgp origins are flushed
     separately by its own protocol-death watch. Arbitration state is
     untouched. *)
  let reset_bgp t =
    Hashtbl.reset t.infos;
    Hashtbl.reset t.cands;
    Hashtbl.reset t.bgp_winners

  let bgp_winner t net = Hashtbl.find_opt t.bgp_winners net
  let rib_winner t net = Hashtbl.find_opt t.rib_winners net
  let bgp_winner_count t = Hashtbl.length t.bgp_winners
  let rib_winner_count t = Hashtbl.length t.rib_winners
end

(* --- worker pool ----------------------------------------------------- *)

type op =
  | Bgp_op of Bgp_decision.shard_op
  | Rib_op of Rib.shard_op
  | Barrier of int
  | Replay
  | Bgp_reset

type delta =
  | D_bgp of Ipv4net.t * Bgp_types.route option
  | D_rib of Ipv4net.t * Rib_route.t option
  | D_ack of int

type t = {
  nshards : int;
  loop : Eventloop.t;
  inboxes : op Mailbox.t array;
  outbox : delta Mailbox.t;
  mutable domains : unit Domain.t array;
  mutable on_bgp :
    (lane:Laneq.lane -> Ipv4net.t -> Bgp_types.route option -> unit) option;
  mutable on_rib :
    (lane:Laneq.lane -> Ipv4net.t -> Rib_route.t option -> unit) option;
  acks : (int, int) Hashtbl.t; (* barrier token -> acks received *)
  mutable next_token : int;
  failure : exn option Atomic.t;
  mutable closed : bool;
}

let shards t = t.nshards

(* Bounded per-turn delta application, so a full-table load's winner
   stream cannot monopolise a loop turn on the main domain. *)
let pump_slice = 2048

let rec pump pool () =
  let batch = Mailbox.drain ~bulk_slice:pump_slice pool.outbox in
  List.iter
    (fun (lane, d) ->
       match d with
       | D_ack token ->
         let n = Option.value (Hashtbl.find_opt pool.acks token) ~default:0 in
         Hashtbl.replace pool.acks token (n + 1)
       | D_bgp (net, w) ->
         (match pool.on_bgp with Some f -> f ~lane net w | None -> ())
       | D_rib (net, w) ->
         (match pool.on_rib with Some f -> f ~lane net w | None -> ()))
    batch;
  if not (Mailbox.is_empty pool.outbox) then
    Eventloop.defer pool.loop (pump pool)

let worker pool shard () =
  let eng = Engine.create ~shard ~shards:pool.nshards in
  let inbox = pool.inboxes.(shard) in
  let emit_for lane =
    { Engine.emit_bgp =
        (fun net w -> Mailbox.push pool.outbox lane ~net (D_bgp (net, w)));
      emit_rib =
        (fun net w -> Mailbox.push pool.outbox lane ~net (D_rib (net, w))) }
  in
  let urgent_emit = emit_for Laneq.Urgent in
  let bulk_emit = emit_for Laneq.Bulk in
  let rec loop () =
    match Mailbox.drain_wait inbox with
    | [] -> () (* closed and drained *)
    | batch ->
      List.iter
        (fun (lane, op) ->
           let emit =
             match lane with
             | Laneq.Urgent -> urgent_emit
             | Laneq.Bulk -> bulk_emit
           in
           match op with
           | Barrier token ->
             Mailbox.push pool.outbox Laneq.Bulk ~net:Ipv4net.default
               (D_ack token)
           | Replay -> Engine.replay eng ~emit:bulk_emit
           | Bgp_reset -> Engine.reset_bgp eng
           | Bgp_op o -> Engine.apply_bgp eng ~emit o
           | Rib_op o -> Engine.apply_rib eng ~emit o)
        batch;
      loop ()
  in
  try loop () with exn -> Atomic.set pool.failure (Some exn)

let create ?(shards = 4) loop () =
  if shards < 1 then invalid_arg "Shard.create";
  let pool_ref = ref None in
  let outbox =
    Mailbox.create ~ordered:true
      ~on_wakeup:(fun () ->
          match !pool_ref with
          | Some pool -> Eventloop.post loop (pump pool)
          | None -> ())
      ()
  in
  let pool =
    { nshards = shards; loop;
      inboxes =
        Array.init shards (fun _ -> Mailbox.create ~ordered:true ());
      outbox;
      domains = [||];
      on_bgp = None; on_rib = None;
      acks = Hashtbl.create 4;
      next_token = 0;
      failure = Atomic.make None;
      closed = false }
  in
  (* Published before the workers spawn; Domain.spawn orders the write. *)
  pool_ref := Some pool;
  pool.domains <- Array.init shards (fun s -> Domain.spawn (worker pool s));
  pool

let check_failure pool =
  match Atomic.get pool.failure with
  | Some exn ->
    failwith ("Shard: worker died: " ^ Printexc.to_string exn)
  | None -> ()

let owner pool net = Ptree.shard_of ~shards:pool.nshards net

let broadcast pool lane op =
  Array.iter
    (fun ib -> Mailbox.push ib lane ~net:Ipv4net.default op)
    pool.inboxes

let bgp_dispatch pool ~lane (op : Bgp_decision.shard_op) =
  if not pool.closed then
    match op with
    | Bgp_decision.Shard_add r | Bgp_decision.Shard_delete r ->
      let net = r.Bgp_types.net in
      Mailbox.push pool.inboxes.(owner pool net) lane ~net (Bgp_op op)
    | Bgp_decision.Shard_peer _ | Bgp_decision.Shard_peer_gone _ ->
      broadcast pool lane (Bgp_op op)

let rib_dispatch pool ~lane (op : Rib.shard_op) =
  if not pool.closed then
    match op with
    | Rib.Shard_add r ->
      if is_internal r.Rib_route.protocol then broadcast pool lane (Rib_op op)
      else
        Mailbox.push
          pool.inboxes.(owner pool r.Rib_route.net)
          lane ~net:r.Rib_route.net (Rib_op op)
    | Rib.Shard_delete { protocol; net } ->
      if is_internal protocol then broadcast pool lane (Rib_op op)
      else Mailbox.push pool.inboxes.(owner pool net) lane ~net (Rib_op op)

let replay pool =
  if not pool.closed then
    Array.iter
      (fun ib -> Mailbox.push ib Laneq.Bulk ~net:Ipv4net.default Replay)
      pool.inboxes

let connect_bgp pool bgp =
  pool.on_bgp <-
    Some (fun ~lane net w -> Bgp_process.apply_winner_delta bgp ~lane net w);
  (* [bgp] may be a reborn process with an empty mirror: discard all
     decision-stage state before any of its routes arrive. The reset
     rides the bulk lane so that straggler operations from the previous
     process (always at least as old in every inbox) are cleared with
     it, not applied after it. *)
  if not pool.closed then broadcast pool Laneq.Bulk Bgp_reset

let connect_rib pool rib =
  pool.on_rib <-
    Some (fun ~lane net w -> Rib.apply_winner_delta rib ~lane net w)

let backlog pool =
  Array.fold_left (fun acc ib -> acc + Mailbox.length ib) 0 pool.inboxes
  + Mailbox.length pool.outbox

let quiesce ?(timeout_s = 30.) pool =
  if not pool.closed then begin
    check_failure pool;
    let token = pool.next_token in
    pool.next_token <- token + 1;
    Hashtbl.replace pool.acks token 0;
    Array.iter
      (fun ib ->
         Mailbox.push ib Laneq.Bulk ~net:Ipv4net.default (Barrier token))
      pool.inboxes;
    let deadline = Unix.gettimeofday () +. timeout_s in
    let finished () =
      Hashtbl.find_opt pool.acks token = Some pool.nshards
    in
    (* Drive the loop so posted pump callbacks run; run_until_idle
       dispatches only due work, so the simulation clock stays put. *)
    while
      (not (finished ()))
      && Unix.gettimeofday () < deadline
      && Atomic.get pool.failure = None
    do
      Eventloop.run_until_idle pool.loop;
      if not (finished ()) then Unix.sleepf 0.0002
    done;
    let ok = finished () in
    Hashtbl.remove pool.acks token;
    check_failure pool;
    if not ok then failwith "Shard.quiesce: timeout"
  end

let shutdown pool =
  if not pool.closed then begin
    pool.closed <- true;
    Array.iter Mailbox.close pool.inboxes;
    Array.iter Domain.join pool.domains;
    Mailbox.close pool.outbox;
    (* Workers are gone; anything still in the outbox is applied here. *)
    pump pool ()
  end
