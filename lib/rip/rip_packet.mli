(** RIPv2 wire codec (RFC 2453).

    Packets are a 4-byte header (command, version, zero) followed by up
    to 25 twenty-byte route entries (AFI, route tag, address, mask,
    nexthop, metric). *)

type command = Request | Response

type entry = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;   (** 0.0.0.0: via the sender. *)
  metric : int;       (** 1..16; 16 is infinity. *)
  tag : int;
}

type t = { command : command; entries : entry list }

val infinity_metric : int
(** 16 *)

val max_entries : int
(** 25 entries per packet; longer tables are split across packets. *)

val whole_table_request : t
(** The special request (one entry, AFI 0, metric 16) asking for the
    responder's entire routing table. *)

val is_whole_table_request : t -> bool

val encode : t -> string
(** @raise Invalid_argument when entries exceed {!max_entries}. *)

val decode : string -> (t, string) result

val split : command -> entry list -> t list
(** Pack an arbitrarily long entry list into maximal packets. *)

val to_string : t -> string
