type command = Request | Response

type entry = {
  net : Ipv4net.t;
  nexthop : Ipv4.t;
  metric : int;
  tag : int;
}

type t = { command : command; entries : entry list }

let infinity_metric = 16
let max_entries = 25
let afi_inet = 2
let rip_version = 2

let whole_table_request =
  { command = Request;
    entries =
      [ { net = Ipv4net.default; nexthop = Ipv4.zero;
          metric = infinity_metric; tag = 0 } ] }

(* RFC 2453 §3.9.1: a request with exactly one entry, AFI 0, metric 16
   asks for the whole table. We encode AFI 0 as the default prefix. *)
let is_whole_table_request t =
  match t.command, t.entries with
  | Request, [ e ] ->
    e.metric = infinity_metric && Ipv4net.equal e.net Ipv4net.default
  | _ -> false

(* Netmask to prefix length; rejects non-contiguous masks. *)
let prefix_len_of_mask m =
  let v = Ipv4.to_int m in
  let rec count l =
    if l > 32 then None
    else if Ipv4.to_int (Ipv4.mask_of_len l) = v then Some l
    else count (l + 1)
  in
  count 0

let encode t =
  if List.length t.entries > max_entries then
    invalid_arg "Rip_packet.encode: too many entries";
  let w = Wire.W.create ~initial:(4 + (20 * List.length t.entries)) () in
  Wire.W.u8 w (match t.command with Request -> 1 | Response -> 2);
  Wire.W.u8 w rip_version;
  Wire.W.u16 w 0;
  List.iter
    (fun e ->
       let whole = Ipv4net.equal e.net Ipv4net.default && e.metric = infinity_metric
                   && t.command = Request in
       Wire.W.u16 w (if whole then 0 else afi_inet);
       Wire.W.u16 w e.tag;
       Wire.W.ipv4 w (Ipv4net.network e.net);
       Wire.W.ipv4 w (Ipv4net.netmask e.net);
       Wire.W.ipv4 w e.nexthop;
       Wire.W.u32 w e.metric)
    t.entries;
  Wire.W.contents w

let decode s =
  try
    let r = Wire.R.of_string s in
    let command =
      match Wire.R.u8 r with
      | 1 -> Request
      | 2 -> Response
      | c -> failwith (Printf.sprintf "bad command %d" c)
    in
    let version = Wire.R.u8 r in
    if version <> rip_version then
      failwith (Printf.sprintf "unsupported version %d" version);
    ignore (Wire.R.u16 r);
    let rec entries acc =
      if Wire.R.eof r then List.rev acc
      else begin
        let afi = Wire.R.u16 r in
        let tag = Wire.R.u16 r in
        let addr = Wire.R.ipv4 r in
        let mask = Wire.R.ipv4 r in
        let nexthop = Wire.R.ipv4 r in
        let metric = Wire.R.u32 r in
        if metric < 1 || metric > infinity_metric then
          failwith (Printf.sprintf "bad metric %d" metric);
        if afi <> afi_inet && afi <> 0 then
          (* Unknown address families are skipped per RFC. *)
          entries acc
        else
          match prefix_len_of_mask mask with
          | None -> failwith "non-contiguous netmask"
          | Some len ->
            entries ({ net = Ipv4net.make addr len; nexthop; metric; tag } :: acc)
      end
    in
    let entries = entries [] in
    if List.length entries > max_entries then failwith "too many entries";
    Ok { command; entries }
  with
  | Failure msg -> Error msg
  | Wire.Truncated -> Error "truncated packet"

let split command entries =
  let rec go acc current n = function
    | [] ->
      let acc = if current = [] then acc else { command; entries = List.rev current } :: acc in
      List.rev acc
    | e :: rest ->
      if n >= max_entries then
        go ({ command; entries = List.rev current } :: acc) [ e ] 1 rest
      else go acc (e :: current) (n + 1) rest
  in
  go [] [] 0 entries

let to_string t =
  Printf.sprintf "%s [%s]"
    (match t.command with Request -> "request" | Response -> "response")
    (String.concat "; "
       (List.map
          (fun e ->
             Printf.sprintf "%s m%d" (Ipv4net.to_string e.net) e.metric)
          t.entries))
