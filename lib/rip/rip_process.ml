let src = Logs.Src.create "xorp.rip" ~doc:"RIP process"

module Log = (val Logs.src_log src : Logs.LOG)

let rip_port = 520
let infinity = Rip_packet.infinity_metric

type iface = { if_addr : Ipv4.t; if_neighbors : Ipv4.t list }

type config = {
  ifaces : iface list;
  update_interval : float;
  timeout : float;
  gc_time : float;
  triggered_delay : float;
  send_to_rib : bool;
}

let default_config ~ifaces =
  { ifaces; update_interval = 30.0; timeout = 180.0; gc_time = 120.0;
    triggered_delay = 1.0; send_to_rib = true }

type rip_route = {
  rnet : Ipv4net.t;
  mutable rnexthop : Ipv4.t;
  mutable rmetric : int;
  mutable rtag : int;
  mutable rsrc : Ipv4.t; (* zero = locally originated / redistributed *)
  mutable expiry : Eventloop.timer option;
  mutable gc : Eventloop.timer option;
  mutable changed : bool;
}

type t = {
  router : Xrl_router.t;
  loop : Eventloop.t;
  cfg : config;
  rng : Rng.t;
  db : rip_route Ptree.t;
  (* neighbor address -> local interface address *)
  neighbor_iface : (int, Ipv4.t) Hashtbl.t;
  (* local interface address -> FEA socket id *)
  socks : (int, int) Hashtbl.t;
  mutable started : bool;
  mutable trigger_pending : bool;
  mutable fea_up : bool;
  (* False while no RIB instance is registered: route announcements are
     suppressed (the reborn RIB starts empty, so skipped deletes are
     moot) and a rebirth triggers a full replay of the learned table. *)
  mutable rib_up : bool;
  rib_rebirth_resync : bool;
  (* Redistribution policies this process has subscribed with; the
     RIB's subscriber table dies with it, so these are re-sent on
     rebirth. *)
  mutable redist_policies : string list;
  c_resync_replayed : Telemetry.counter;
  mutable tx_updates : int;
  mutable rx_updates : int;
  mutable tx_triggered : int;
  mutable expired : int;
}

let instance_name t = Xrl_router.instance_name t.router

(* --- FEA I/O ---------------------------------------------------------- *)

let send_packet t ~ifaddr ~dst packet =
  match Hashtbl.find_opt t.socks (Ipv4.to_int ifaddr) with
  | None ->
    Log.warn (fun m -> m "no socket for interface %s" (Ipv4.to_string ifaddr))
  | Some sockid ->
    let xrl =
      Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_send"
        [ Xrl_atom.u32 "sockid" sockid;
          Xrl_atom.ipv4 "dst" dst;
          Xrl_atom.u32 "dport" rip_port;
          Xrl_atom.binary "payload" (Rip_packet.encode packet) ]
    in
    Xrl_router.send t.router xrl (fun err _ ->
        if not (Xrl_error.is_ok err) then
          Log.warn (fun m ->
              m "udp_send to %s failed: %s" (Ipv4.to_string dst)
                (Xrl_error.to_string err)))

let send_to_neighbor t ~dst packets =
  match Hashtbl.find_opt t.neighbor_iface (Ipv4.to_int dst) with
  | None -> ()
  | Some ifaddr -> List.iter (fun p -> send_packet t ~ifaddr ~dst p) packets

let iter_neighbors t f =
  Hashtbl.iter (fun naddr ifaddr -> f (Ipv4.of_int naddr) ifaddr) t.neighbor_iface

(* --- RIB interaction --------------------------------------------------- *)

(* Route transfers into the RIB are idempotent, so they qualify for
   bounded retry. [No_such_method] is in the retryable set, which
   closes the Finder birth gap: a reborn RIB is resolvable one loop
   turn before its handlers are registered. *)
let rib_retry = Xrl_router.default_retry

let rib_add t (r : rip_route) =
  if t.cfg.send_to_rib && t.rib_up then
    let xrl =
      Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"add_route"
        [ Xrl_atom.txt "protocol" "rip";
          Xrl_atom.ipv4net "net" r.rnet;
          Xrl_atom.ipv4 "nexthop" r.rnexthop;
          Xrl_atom.u32 "metric" r.rmetric ]
    in
    Xrl_router.send ~retry:rib_retry t.router xrl (fun err _ ->
        if not (Xrl_error.is_ok err) then
          Log.warn (fun m -> m "rib add failed: %s" (Xrl_error.to_string err)))

let rib_delete t (r : rip_route) =
  if t.cfg.send_to_rib && t.rib_up then
    let xrl =
      Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"delete_route"
        [ Xrl_atom.txt "protocol" "rip"; Xrl_atom.ipv4net "net" r.rnet ]
    in
    Xrl_router.send ~retry:rib_retry t.router xrl (fun err _ ->
        if not (Xrl_error.is_ok err) then
          Log.debug (fun m -> m "rib delete failed: %s" (Xrl_error.to_string err)))

(* --- update generation -------------------------------------------------- *)

(* Advertised entries for one neighbor: split horizon with poisoned
   reverse — routes learned from that neighbor go out with metric 16. *)
let entries_for_neighbor t ~neighbor ?(changed_only = false) () =
  Ptree.fold
    (fun _ r acc ->
       if changed_only && not r.changed then acc
       else
         let metric =
           if Ipv4.equal r.rsrc neighbor then infinity else r.rmetric
         in
         { Rip_packet.net = r.rnet; nexthop = Ipv4.zero; metric; tag = r.rtag }
         :: acc)
    t.db []
  |> List.rev

let send_full_update t ~dst =
  let entries = entries_for_neighbor t ~neighbor:dst () in
  if entries <> [] then begin
    t.tx_updates <- t.tx_updates + 1;
    send_to_neighbor t ~dst (Rip_packet.split Rip_packet.Response entries)
  end

let clear_changed t =
  Ptree.iter (fun _ r -> r.changed <- false) t.db

let send_triggered t =
  let any = Ptree.fold (fun _ r acc -> acc || r.changed) t.db false in
  if any then begin
    iter_neighbors t (fun naddr _ ->
        let entries = entries_for_neighbor t ~neighbor:naddr ~changed_only:true () in
        if entries <> [] then begin
          t.tx_triggered <- t.tx_triggered + 1;
          send_to_neighbor t ~dst:naddr
            (Rip_packet.split Rip_packet.Response entries)
        end);
    clear_changed t
  end

(* Triggered updates are suppressed: at most one batch per
   triggered_delay (RFC 2453 §3.10.1). *)
let schedule_trigger t =
  if t.started && not t.trigger_pending then begin
    t.trigger_pending <- true;
    ignore
      (Eventloop.after t.loop t.cfg.triggered_delay (fun () ->
           t.trigger_pending <- false;
           send_triggered t))
  end

(* --- route state machine -------------------------------------------------- *)

let cancel_timers r =
  Option.iter Eventloop.cancel r.expiry;
  Option.iter Eventloop.cancel r.gc;
  r.expiry <- None;
  r.gc <- None

let rec start_gc t r =
  Option.iter Eventloop.cancel r.gc;
  r.gc <-
    Some
      (Eventloop.after t.loop t.cfg.gc_time (fun () ->
           ignore (Ptree.remove t.db r.rnet)))

and kill_route t r =
  (* Deletion process: metric 16, advertise the death, gc later. *)
  if r.rmetric < infinity then begin
    r.rmetric <- infinity;
    r.changed <- true;
    rib_delete t r;
    schedule_trigger t
  end;
  Option.iter Eventloop.cancel r.expiry;
  r.expiry <- None;
  start_gc t r

and start_expiry t r =
  Option.iter Eventloop.cancel r.expiry;
  r.expiry <-
    Some
      (Eventloop.after t.loop t.cfg.timeout (fun () ->
           t.expired <- t.expired + 1;
           kill_route t r))

let upsert_learned t ~net ~src:srcaddr ~metric ~tag =
  match Ptree.find t.db net with
  | None ->
    if metric < infinity then begin
      let r =
        { rnet = net; rnexthop = srcaddr; rmetric = metric; rtag = tag;
          rsrc = srcaddr; expiry = None; gc = None; changed = true }
      in
      ignore (Ptree.insert t.db net r);
      start_expiry t r;
      rib_add t r;
      schedule_trigger t
    end
  | Some r ->
    if Ipv4.equal r.rsrc Ipv4.zero then
      (* Locally originated routes are never overridden by the wire. *)
      ()
    else if Ipv4.equal r.rsrc srcaddr then begin
      (* Same router: always believe it. *)
      if metric >= infinity then begin
        if r.rmetric < infinity then kill_route t r
        else start_gc t r
      end
      else begin
        Option.iter Eventloop.cancel r.gc;
        r.gc <- None;
        start_expiry t r;
        if metric <> r.rmetric then begin
          r.rmetric <- metric;
          r.changed <- true;
          rib_add t r;
          schedule_trigger t
        end
      end
    end
    else if metric < r.rmetric then begin
      (* Strictly better route from another router. *)
      cancel_timers r;
      r.rsrc <- srcaddr;
      r.rnexthop <- srcaddr;
      r.rmetric <- metric;
      r.rtag <- tag;
      r.changed <- true;
      start_expiry t r;
      rib_add t r;
      schedule_trigger t
    end

let handle_response t ~src:srcaddr (pkt : Rip_packet.t) =
  if not (Hashtbl.mem t.neighbor_iface (Ipv4.to_int srcaddr)) then
    Log.debug (fun m ->
        m "response from unconfigured %s ignored" (Ipv4.to_string srcaddr))
  else begin
    t.rx_updates <- t.rx_updates + 1;
    List.iter
      (fun (e : Rip_packet.entry) ->
         let metric = min (e.metric + 1) infinity in
         upsert_learned t ~net:e.net ~src:srcaddr ~metric ~tag:e.tag)
      pkt.Rip_packet.entries
  end

let handle_request t ~src:srcaddr ~sport (pkt : Rip_packet.t) =
  ignore sport;
  if Rip_packet.is_whole_table_request pkt then send_full_update t ~dst:srcaddr
  else begin
    (* Specific query: echo the entries with our metrics (16 if
       unknown); no split horizon on specific queries (RFC 2453
       §3.9.1). *)
    let entries =
      List.map
        (fun (e : Rip_packet.entry) ->
           match Ptree.find t.db e.Rip_packet.net with
           | Some r -> { e with Rip_packet.metric = r.rmetric; tag = r.rtag }
           | None -> { e with Rip_packet.metric = infinity })
        pkt.Rip_packet.entries
    in
    send_to_neighbor t ~dst:srcaddr (Rip_packet.split Rip_packet.Response entries)
  end

(* --- local origination ---------------------------------------------------- *)

let inject t ~net ?(metric = 1) ?(tag = 0) () =
  let metric = max 1 (min metric (infinity - 1)) in
  (match Ptree.find t.db net with
   | Some r ->
     cancel_timers r;
     r.rsrc <- Ipv4.zero;
     r.rnexthop <- Ipv4.zero;
     r.rmetric <- metric;
     r.rtag <- tag;
     r.changed <- true
   | None ->
     ignore
       (Ptree.insert t.db net
          { rnet = net; rnexthop = Ipv4.zero; rmetric = metric; rtag = tag;
            rsrc = Ipv4.zero; expiry = None; gc = None; changed = true }));
  schedule_trigger t

let retract t net =
  match Ptree.find t.db net with
  | Some r when Ipv4.equal r.rsrc Ipv4.zero -> kill_route t r
  | _ -> ()

(* --- XRL interface ---------------------------------------------------------- *)

let add_handlers t =
  let ok = Xrl_error.Ok_xrl in
  Xrl_router.add_handler t.router ~interface:"fea_client" ~method_name:"recv"
    (fun args reply ->
       let srcaddr = Xrl_atom.get_ipv4 args "src" in
       let sport = Xrl_atom.get_u32 args "sport" in
       let payload = Xrl_atom.get_binary args "payload" in
       (match Rip_packet.decode payload with
        | Ok pkt ->
          (match pkt.Rip_packet.command with
           | Rip_packet.Response ->
             if sport = rip_port then handle_response t ~src:srcaddr pkt
             else
               Log.debug (fun m ->
                   m "response from non-520 port %d ignored" sport)
           | Rip_packet.Request -> handle_request t ~src:srcaddr ~sport pkt)
        | Error msg ->
          Log.warn (fun m ->
              m "undecodable RIP packet from %s: %s" (Ipv4.to_string srcaddr)
                msg));
       reply ok []);
  Xrl_router.add_handler t.router ~interface:"redist_client"
    ~method_name:"add_route" (fun args reply ->
        let net = Xrl_atom.get_ipv4net args "net" in
        let metric = Xrl_atom.get_u32 args "metric" in
        let tag = Xrl_atom.get_u32 args "tag" in
        inject t ~net ~metric:(max 1 metric) ~tag ();
        reply ok []);
  Xrl_router.add_handler t.router ~interface:"redist_client"
    ~method_name:"delete_route" (fun args reply ->
        retract t (Xrl_atom.get_ipv4net args "net");
        reply ok []);
  Xrl_router.add_handler t.router ~interface:"rip"
    ~method_name:"add_static_route" (fun args reply ->
        let net = Xrl_atom.get_ipv4net args "net" in
        let metric =
          match Xrl_atom.find args "metric" with
          | Some { value = U32 m; _ } -> m
          | _ -> 1
        in
        inject t ~net ~metric ();
        reply ok []);
  Xrl_router.add_handler t.router ~interface:"rip"
    ~method_name:"get_route_count" (fun _ reply ->
        let live =
          Ptree.fold
            (fun _ r acc -> if r.rmetric < infinity then acc + 1 else acc)
            t.db 0
        in
        reply ok [ Xrl_atom.u32 "count" live ])

(* --- lifecycle ----------------------------------------------------------------- *)

(* The FEA relay socket is opened with a bounded retry: at process
   start the FEA may not be registered yet, and on a chaotic transport
   the open request itself can be black-holed — without retry a single
   lost [udp_open] would wedge the interface forever (a gap found by
   the simulation harness's schedule fuzzing). *)
let open_retry =
  { Xrl_router.default_retry with
    max_attempts = 10; base_delay = 0.25; max_delay = 2.0;
    attempt_timeout = Some 2.0 }

let open_iface_socket t iface =
  let xrl =
    Xrl.make ~target:"fea" ~interface:"fea_udp" ~method_name:"udp_open"
      [ Xrl_atom.txt "client_target" (instance_name t);
        Xrl_atom.ipv4 "addr" iface.if_addr;
        Xrl_atom.u32 "port" rip_port ]
  in
  Xrl_router.send ~retry:open_retry t.router xrl (fun err args ->
      if Xrl_error.is_ok err then begin
        Hashtbl.replace t.socks
          (Ipv4.to_int iface.if_addr)
          (Xrl_atom.get_u32 args "sockid");
        (* Solicit full tables from the neighbours on this interface. *)
        List.iter
          (fun n ->
             send_packet t ~ifaddr:iface.if_addr ~dst:n
               Rip_packet.whole_table_request)
          iface.if_neighbors
      end
      else
        Log.err (fun m ->
            m "udp_open on %s failed: %s"
              (Ipv4.to_string iface.if_addr)
              (Xrl_error.to_string err)))

(* A restarted FEA has no relay sockets: our sockids are stale and
   every send would fail into the void. Re-open on rebirth (mirrors
   the RIB's FIB replay-on-rebirth). *)
let watch_fea_lifecycle t finder =
  Finder.watch_class finder "fea" (fun event _instance ->
      match event with
      | Finder.Death ->
        if t.fea_up && Finder.live_instances finder "fea" = [] then begin
          t.fea_up <- false;
          Hashtbl.reset t.socks
        end
      | Finder.Birth ->
        if not t.fea_up then begin
          t.fea_up <- true;
          (* Deferred: the birth notification fires from inside the new
             FEA's registration, before it has advertised its methods. *)
          Eventloop.defer t.loop (fun () ->
              if t.started && t.fea_up then
                List.iter (open_iface_socket t) t.cfg.ifaces)
        end)

let send_redist_subscribe t policy =
  let xrl =
    Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"redist_subscribe"
      [ Xrl_atom.txt "target" (instance_name t);
        Xrl_atom.txt "policy" policy ]
  in
  Xrl_router.send ~retry:rib_retry t.router xrl (fun err _ ->
      if not (Xrl_error.is_ok err) then
        Log.err (fun m ->
            m "redist_subscribe failed: %s" (Xrl_error.to_string err)))

(* Only LEARNED routes are re-announced: locally originated and
   redistributed entries ([rsrc] = zero) never went through [rib_add]
   in the first place — the RIB learned them from their true origin
   protocol — so replaying them would double-count. *)
let replay_rib t =
  let n =
    Ptree.fold
      (fun _ r n ->
         if r.rmetric < infinity && not (Ipv4.equal r.rsrc Ipv4.zero) then begin
           rib_add t r;
           n + 1
         end
         else n)
      t.db 0
  in
  Telemetry.add t.c_resync_replayed n;
  Log.info (fun m -> m "RIB is back; replaying %d routes" n)

(* A restarted RIB has empty origin tables and an empty redistribution
   subscriber list: everything we ever announced — and our interest in
   connected/static redistribution — died with it. Re-subscribe and
   replay on rebirth (mirrors [watch_fea_lifecycle] above and the
   RIB's own FIB replay toward a reborn FEA). *)
let watch_rib_lifecycle t finder =
  Finder.watch_class finder "rib" (fun event _instance ->
      match event with
      | Finder.Death ->
        if t.rib_up && Finder.live_instances finder "rib" = [] then
          t.rib_up <- false
      | Finder.Birth ->
        if not t.rib_up then begin
          t.rib_up <- true;
          (* Deferred: the birth notification fires from inside the new
             RIB's registration, before it has advertised its methods. *)
          Eventloop.defer t.loop (fun () ->
              if t.rib_up && t.rib_rebirth_resync then begin
                List.iter (send_redist_subscribe t) (List.rev t.redist_policies);
                if t.cfg.send_to_rib then replay_rib t
              end)
        end)

let create ?families ?profiler ?(seed = 17) ?(rib_rebirth_resync = true) finder
    loop cfg =
  ignore profiler;
  let router = Xrl_router.create ?families finder loop ~class_name:"rip" () in
  let t =
    { router; loop; cfg; rng = Rng.create seed;
      db = Ptree.create ();
      neighbor_iface = Hashtbl.create 8;
      socks = Hashtbl.create 4;
      started = false; trigger_pending = false; fea_up = true;
      (* From live Finder state, not assumed true: a process created
         while the RIB is down (both killed, protocol restarted first)
         must still treat the RIB's eventual return as a rebirth. *)
      rib_up = Finder.live_instances finder "rib" <> [];
      rib_rebirth_resync; redist_policies = [];
      c_resync_replayed = Telemetry.counter "rip.rib_resync.replayed";
      tx_updates = 0; rx_updates = 0; tx_triggered = 0; expired = 0 }
  in
  List.iter
    (fun iface ->
       List.iter
         (fun n ->
            Hashtbl.replace t.neighbor_iface (Ipv4.to_int n) iface.if_addr)
         iface.if_neighbors)
    cfg.ifaces;
  add_handlers t;
  watch_fea_lifecycle t finder;
  watch_rib_lifecycle t finder;
  t

let periodic_update t =
  iter_neighbors t (fun naddr _ -> send_full_update t ~dst:naddr);
  clear_changed t

let start t =
  if not t.started then begin
    t.started <- true;
    List.iter (open_iface_socket t) t.cfg.ifaces;
    (* Jittered periodic updates: interval ±17%, re-jittered per round
       via a chained timer. *)
    let rec arm () =
      let jitter =
        t.cfg.update_interval *. (0.83 +. (Rng.float t.rng *. 0.34))
      in
      ignore
        (Eventloop.after t.loop jitter (fun () ->
             if t.started then begin
               periodic_update t;
               arm ()
             end))
    in
    arm ()
  end

let subscribe_rib_redistribution t ~policy =
  (* Remembered so the subscription survives a RIB restart: the RIB's
     subscriber table dies with the instance. *)
  t.redist_policies <- policy :: t.redist_policies;
  send_redist_subscribe t policy

(* --- inspection -------------------------------------------------------------------- *)

let route_count t =
  Ptree.fold (fun _ r acc -> if r.rmetric < infinity then acc + 1 else acc) t.db 0

let lookup t net =
  match Ptree.find t.db net with
  | Some r when r.rmetric < infinity -> Some (r.rmetric, r.rnexthop)
  | _ -> None

let routes t =
  Ptree.fold
    (fun _ r acc ->
       if r.rmetric < infinity then (r.rnet, r.rmetric, r.rnexthop) :: acc
       else acc)
    t.db []
  |> List.rev

let updates_sent t = t.tx_updates
let updates_received t = t.rx_updates
let triggered_updates_sent t = t.tx_triggered
let routes_expired t = t.expired

let shutdown t =
  t.started <- false;
  Ptree.iter (fun _ r -> cancel_timers r) t.db;
  Xrl_router.shutdown t.router

let xrl_router t = t.router
