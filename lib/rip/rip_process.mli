(** The RIP component: RIPv2 (RFC 2453) over the FEA's UDP relay.

    Faithful to the paper's sandboxing story (§7): RIP never touches
    the network directly — datagrams go through
    [fea_udp/1.0/udp_open]/[udp_send] XRLs and arrive back via the
    [fea_client/1.0/recv] callback, so the process could run fully
    sandboxed.

    Implements periodic full updates (jittered), route timeout and
    garbage-collection timers, split horizon with poisoned reverse,
    triggered updates with suppression, whole-table and specific
    requests, and route redistribution {e into} RIP via the RIB's
    [redist_client/1.0] interface. Learned routes are offered to the
    RIB (protocol ["rip"]).

    Neighbors are configured explicitly per interface (RIPv2 unicast
    mode): the simulated network has no multicast. *)

type iface = {
  if_addr : Ipv4.t;          (** Local interface address (bound via FEA). *)
  if_neighbors : Ipv4.t list; (** RIP routers reachable on this interface. *)
}

type config = {
  ifaces : iface list;
  update_interval : float;   (** Default 30 s, jittered ±5 s. *)
  timeout : float;           (** Route expiry, default 180 s. *)
  gc_time : float;           (** Garbage collection, default 120 s. *)
  triggered_delay : float;   (** Triggered-update suppression, default 1 s. *)
  send_to_rib : bool;
}

val default_config : ifaces:iface list -> config

type t

val create :
  ?families:Pf.family list ->
  ?profiler:Profiler.t -> ?seed:int ->
  ?rib_rebirth_resync:bool ->
  Finder.t -> Eventloop.t -> config -> t
(** Registers component class ["rip"]. [families] selects the XRL
    transports of the component's endpoint (default: intra-process; the
    simulation harness passes a chaos-wrapped family). [seed] controls
    update jitter.

    FEA socket opens are retried with backoff, and re-issued when a
    restarted FEA registers (its relay sockets — and our sockids — die
    with it).

    [rib_rebirth_resync] (default true) makes the process watch the
    ["rib"] Finder class and, when a restarted RIB registers, re-send
    its redistribution subscriptions and replay every live learned
    route into the reborn (empty) origin table. [false] is the
    deliberately broken variant behind the simulation fuzzer's
    [rib-no-resync] injected bug. *)

val start : t -> unit
(** Open FEA sockets, solicit neighbours' tables, start the periodic
    update timer. *)

val inject : t -> net:Ipv4net.t -> ?metric:int -> ?tag:int -> unit -> unit
(** Originate a route into RIP locally (metric defaults to 1). Also
    reachable over XRL [rip/1.0/add_static_route]. *)

val retract : t -> Ipv4net.t -> unit
(** Withdraw a locally originated route (advertised as metric 16). *)

val subscribe_rib_redistribution : t -> policy:string -> unit
(** Ask the RIB to redistribute matching routes into RIP
    ([rib/1.0/redist_subscribe] with this component as the target). *)

val route_count : t -> int
(** Live (metric < 16) routes in the RIP database. *)

val lookup : t -> Ipv4net.t -> (int * Ipv4.t) option
(** [(metric, nexthop)] for an exact prefix, if live. *)

val routes : t -> (Ipv4net.t * int * Ipv4.t) list
(** All live routes: (net, metric, nexthop). *)

val updates_sent : t -> int
val updates_received : t -> int
val triggered_updates_sent : t -> int
val routes_expired : t -> int

val instance_name : t -> string
val shutdown : t -> unit

val xrl_router : t -> Xrl_router.t
(** The component's XRL endpoint (e.g. to inspect registrations). *)
