(** The paper's profiling mechanism (§8.2).

    Profiling points can be inserted anywhere in the code; each is
    associated with a profiling variable that can be enabled and
    disabled at runtime (in XORP, by the external [xorp_profiler]
    program over XRLs). Enabling a point causes timestamped records to
    be stored, e.g.

    {v route_ribin 1097173928 664085 add 10.0.1.0/24 v}

    Recording at a disabled point is a cheap no-op, so points can stay
    in production code — this is how Figures 10–12 measure per-route
    propagation latency through eight pipeline points. *)

type t

type record = { time : float; point : string; payload : string }

val create : ?capacity:int -> Eventloop.t -> t
(** Timestamps come from the loop's clock (wall or simulated).
    Records live in a bounded ring ({!Telemetry_ring}) of [capacity]
    entries (default 65536); once full, each new record overwrites the
    oldest, so a forgotten enabled point cannot grow memory without
    bound. *)

val define : t -> string -> unit
(** Declare a profiling point (idempotent). Points are auto-defined on
    first {!record}, but declaring them makes {!list_points} useful
    before any traffic flows. *)

val enable : t -> string -> unit
val disable : t -> string -> unit
val enabled : t -> string -> bool
val enable_all : t -> unit
val disable_all : t -> unit

val record : t -> string -> string -> unit
(** [record t point payload] appends a timestamped record if [point] is
    enabled; otherwise does nothing. *)

val records : t -> string -> record list
(** Records captured at one point, oldest first. *)

val all_records : t -> record list
(** Every record, in capture order across points. *)

val drain : t -> record list
(** Like {!all_records}, but also empties the ring (per-point counts
    and enablement stay). Lets a long-running measurement consume
    records incrementally faster than the ring overwrites them. *)

val clear : t -> unit
(** Drop captured records (point definitions and enablement remain). *)

val list_points : t -> (string * bool * int) list
(** [(name, enabled, record_count)] sorted by name. *)

val to_strings : t -> string list
(** Render all records in the paper's textual format:
    ["<point> <seconds> <microseconds> <payload>"]. *)
