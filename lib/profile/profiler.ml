type record = { time : float; point : string; payload : string }

type point_state = { mutable on : bool; mutable count : int }

type t = {
  loop : Eventloop.t;
  points : (string, point_state) Hashtbl.t;
  mutable log : record list; (* newest first *)
}

let create loop = { loop; points = Hashtbl.create 32; log = [] }

let state t name =
  match Hashtbl.find_opt t.points name with
  | Some s -> s
  | None ->
    let s = { on = false; count = 0 } in
    Hashtbl.replace t.points name s;
    s

let define t name = ignore (state t name)
let enable t name = (state t name).on <- true
let disable t name = (state t name).on <- false
let enabled t name = (state t name).on
let enable_all t = Hashtbl.iter (fun _ s -> s.on <- true) t.points
let disable_all t = Hashtbl.iter (fun _ s -> s.on <- false) t.points

let record t point payload =
  let s = state t point in
  if s.on then begin
    s.count <- s.count + 1;
    t.log <- { time = Eventloop.now t.loop; point; payload } :: t.log
  end

let all_records t = List.rev t.log
let records t point = List.filter (fun r -> r.point = point) (all_records t)

let clear t =
  t.log <- [];
  Hashtbl.iter (fun _ s -> s.count <- 0) t.points

let list_points t =
  Hashtbl.fold (fun name s acc -> (name, s.on, s.count) :: acc) t.points []
  |> List.sort compare

let to_strings t =
  List.map
    (fun r ->
       let secs = int_of_float r.time in
       let usecs = int_of_float ((r.time -. float_of_int secs) *. 1e6) in
       Printf.sprintf "%s %d %06d %s" r.point secs usecs r.payload)
    (all_records t)
