type record = { time : float; point : string; payload : string }

type point_state = { mutable on : bool; mutable count : int }

type t = {
  loop : Eventloop.t;
  points : (string, point_state) Hashtbl.t;
  log : record Telemetry_ring.t;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) loop =
  { loop;
    points = Hashtbl.create 32;
    log = Telemetry_ring.create ~capacity }

let state t name =
  match Hashtbl.find_opt t.points name with
  | Some s -> s
  | None ->
    let s = { on = false; count = 0 } in
    Hashtbl.replace t.points name s;
    s

let define t name = ignore (state t name)
let enable t name = (state t name).on <- true
let disable t name = (state t name).on <- false
let enabled t name = (state t name).on
let enable_all t = Hashtbl.iter (fun _ s -> s.on <- true) t.points
let disable_all t = Hashtbl.iter (fun _ s -> s.on <- false) t.points

let record t point payload =
  let s = state t point in
  if s.on then begin
    s.count <- s.count + 1;
    Telemetry_ring.push t.log { time = Eventloop.now t.loop; point; payload }
  end

let all_records t = Telemetry_ring.to_list t.log

let drain t =
  let rs = Telemetry_ring.to_list t.log in
  Telemetry_ring.clear t.log;
  rs

let records t point =
  Telemetry_ring.fold
    (fun acc r -> if r.point = point then r :: acc else acc)
    [] t.log
  |> List.rev

let clear t =
  Telemetry_ring.clear t.log;
  Hashtbl.iter (fun _ s -> s.count <- 0) t.points

let list_points t =
  Hashtbl.fold (fun name s acc -> (name, s.on, s.count) :: acc) t.points []
  |> List.sort compare

let to_strings t =
  Telemetry_ring.fold
    (fun acc r ->
       let secs = int_of_float r.time in
       (* Round to the nearest microsecond, carrying into the seconds
          field: truncation would render e.g. 3.9999999 as "3 999999"
          when the clock really read 4.0, and plain rounding could
          print the out-of-range "1000000". *)
       let usecs =
         int_of_float (Float.round ((r.time -. float_of_int secs) *. 1e6))
       in
       let secs, usecs =
         if usecs >= 1_000_000 then (secs + 1, usecs - 1_000_000)
         else (secs, usecs)
       in
       Printf.sprintf "%s %d %06d %s" r.point secs usecs r.payload :: acc)
    [] t.log
  |> List.rev
