let src = Logs.Src.create "xorp.dataplane" ~doc:"element-graph data plane"

module Log = (val Logs.src_log src : Logs.LOG)

let telemetry_prefix = "dataplane."

type action = Emit of int | Kill of string

type lookup_result = {
  lr_nexthop : Ipv4.t;
  lr_ifname : string;
  lr_connected : bool;
}

(* ------------------------------------------------------------------ *)
(* Graph description                                                  *)

type decl = { d_name : string; d_klass : string; d_args : string list }
type edge = { e_src : string; e_sport : int; e_dst : string; e_dport : int }
type spec = { sp_decls : decl list; sp_edges : edge list }

(* ------------------------------------------------------------------ *)
(* Element classes                                                    *)

(* How many ports a class exposes. [Range] classes take their actual
   count from the connections in the graph. *)
type ports = Exact of int | Range of int * int

(* The structural classes (queueing, fan-out, graph edges to the
   outside world) are built in; everything that is per-packet logic —
   including most built-ins — is a [Map], so user classes registered
   with [register_map_class] are not second-class citizens. *)
type impl =
  | I_map of (lookup:(Ipv4.t -> lookup_result option) ->
              args:string list -> n_out:int -> (Packet.t -> action))
  | I_from
  | I_to_net
  | I_queue
  | I_sched
  | I_tee

type class_info = {
  ci_in : ports;
  ci_out : string list -> ports; (* from checked args *)
  ci_check : string list -> (unit, string) result;
  ci_impl : impl;
  ci_builtin : bool;
}

let classes : (string, class_info) Hashtbl.t = Hashtbl.create 16

let is_ident s =
  s <> ""
  && String.for_all
       (fun c ->
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
          || (c >= '0' && c <= '9') || c = '_')
       s

let check_no_args = function
  | [] -> Ok ()
  | _ -> Error "takes no arguments"

let check_one_int ~what ~min ~max = function
  | [ a ] -> (
      match int_of_string_opt a with
      | Some n when n >= min && n <= max -> Ok ()
      | _ ->
        Error (Printf.sprintf "%s must be an integer in %d..%d" what min max))
  | _ -> Error (Printf.sprintf "takes exactly one argument (%s)" what)

let classify_spec arg =
  if arg = "-" then Ok None
  else
    match int_of_string_opt arg with
    | Some n when n >= 0 && n <= 255 -> Ok (Some n)
    | _ -> Error (Printf.sprintf "bad protocol %S (want 0..255 or '-')" arg)

let () =
  let add name ci = Hashtbl.replace classes name ci in
  add "FromNetsim"
    { ci_in = Exact 0; ci_out = (fun _ -> Exact 1);
      ci_check =
        (function
          | [ ifname ] when ifname <> "" -> Ok ()
          | _ -> Error "takes exactly one argument (the interface name)");
      ci_impl = I_from; ci_builtin = true };
  add "ToNetsim"
    { ci_in = Exact 1; ci_out = (fun _ -> Exact 0);
      ci_check = check_no_args; ci_impl = I_to_net; ci_builtin = true };
  add "Queue"
    { ci_in = Exact 1; ci_out = (fun _ -> Exact 1);
      ci_check = check_one_int ~what:"capacity" ~min:1 ~max:1_000_000;
      ci_impl = I_queue; ci_builtin = true };
  add "Scheduler"
    { ci_in = Range (1, 16); ci_out = (fun _ -> Exact 1);
      ci_check = check_one_int ~what:"burst" ~min:1 ~max:4096;
      ci_impl = I_sched; ci_builtin = true };
  add "Tee"
    { ci_in = Exact 1;
      ci_out = (fun args ->
          match args with [ n ] -> Exact (int_of_string n) | _ -> Exact 2);
      ci_check = check_one_int ~what:"branches" ~min:2 ~max:16;
      ci_impl = I_tee; ci_builtin = true };
  add "Classify"
    { ci_in = Exact 1;
      ci_out = (fun args -> Exact (List.length args));
      ci_check =
        (fun args ->
           if args = [] then Error "needs at least one protocol pattern"
           else
             List.fold_left
               (fun acc a ->
                  match (acc, classify_spec a) with
                  | (Error _ as e), _ -> e
                  | Ok (), Error e -> Error e
                  | Ok (), Ok _ -> Ok ())
               (Ok ()) args);
      ci_impl =
        I_map
          (fun ~lookup:_ ~args ~n_out:_ ->
             let specs =
               Array.of_list
                 (List.map
                    (fun a ->
                       match classify_spec a with
                       | Ok s -> s
                       | Error e -> invalid_arg e)
                    args)
             in
             fun pkt ->
               let rec go i =
                 if i >= Array.length specs then Kill "no-match"
                 else
                   match specs.(i) with
                   | None -> Emit i
                   | Some p when p = pkt.Packet.proto -> Emit i
                   | Some _ -> go (i + 1)
               in
               go 0);
      ci_builtin = true };
  add "CheckHeader"
    { ci_in = Exact 1; ci_out = (fun _ -> Exact 1);
      ci_check = check_no_args;
      ci_impl =
        I_map
          (fun ~lookup:_ ~args:_ ~n_out:_ pkt ->
             if pkt.Packet.ttl <= 0 then Kill "zero-ttl"
             else if Ipv4.equal pkt.Packet.dst Ipv4.zero then Kill "bad-dst"
             else if Ipv4.equal pkt.Packet.dst Ipv4.broadcast then
               Kill "broadcast"
             else if Ipv4.is_multicast pkt.Packet.dst then Kill "multicast"
             else Emit 0);
      ci_builtin = true };
  add "LpmLookup"
    { ci_in = Exact 1; ci_out = (fun _ -> Range (1, 2));
      ci_check = check_no_args;
      ci_impl =
        I_map
          (fun ~lookup ~args:_ ~n_out ->
             fun pkt ->
               match lookup pkt.Packet.dst with
               | None -> if n_out >= 2 then Emit 1 else Kill "no-route"
               | Some lr ->
                 pkt.Packet.nexthop <-
                   (if lr.lr_connected || Ipv4.equal lr.lr_nexthop Ipv4.zero
                    then pkt.Packet.dst
                    else lr.lr_nexthop);
                 pkt.Packet.out_ifname <- lr.lr_ifname;
                 Emit 0);
      ci_builtin = true };
  add "DecTtl"
    { ci_in = Exact 1; ci_out = (fun _ -> Exact 1);
      ci_check = check_no_args;
      ci_impl =
        I_map
          (fun ~lookup:_ ~args:_ ~n_out:_ pkt ->
             pkt.Packet.ttl <- pkt.Packet.ttl - 1;
             if pkt.Packet.ttl <= 0 then Kill "ttl-expired" else Emit 0);
      ci_builtin = true };
  add "Count"
    { ci_in = Exact 1; ci_out = (fun _ -> Exact 1);
      ci_check = check_no_args;
      ci_impl = I_map (fun ~lookup:_ ~args:_ ~n_out:_ _pkt -> Emit 0);
      ci_builtin = true };
  add "Drop"
    { ci_in = Exact 1; ci_out = (fun _ -> Exact 0);
      ci_check =
        (function
          | [] -> Ok ()
          | [ r ] when is_ident r || String.for_all (fun c -> c <> '.') r ->
            Ok ()
          | _ -> Error "takes at most one argument (the drop reason)");
      ci_impl =
        I_map
          (fun ~lookup:_ ~args ~n_out:_ ->
             let reason = match args with [ r ] -> r | _ -> "dropped" in
             fun _pkt -> Kill reason);
      ci_builtin = true }

let register_map_class ?(n_out = (1, 1)) name ~check ~make =
  let lo, hi = n_out in
  if lo < 0 || hi < lo then invalid_arg "Dataplane.register_map_class: n_out";
  (match Hashtbl.find_opt classes name with
   | Some { ci_builtin = true; _ } ->
     invalid_arg
       (Printf.sprintf "Dataplane.register_map_class: %s is built in" name)
   | _ -> ());
  Hashtbl.replace classes name
    { ci_in = Exact 1;
      ci_out = (fun _ -> if lo = hi then Exact lo else Range (lo, hi));
      ci_check = check;
      ci_impl = I_map (fun ~lookup:_ ~args ~n_out -> make ~args ~n_out);
      ci_builtin = false }

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

(* "[2]name[1]" -> (Some 2, "name", Some 1); ports optional. *)
let parse_endpoint s =
  let s = String.trim s in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let take_port s =
    (* s starts with '['; returns (port, rest-after-']'). *)
    match String.index_opt s ']' with
    | None -> err "missing ']' in %S" s
    | Some i -> (
        match int_of_string_opt (String.trim (String.sub s 1 (i - 1))) with
        | Some p when p >= 0 ->
          Ok (p, String.sub s (i + 1) (String.length s - i - 1))
        | _ -> err "bad port number in %S" s)
  in
  let inp, rest =
    if String.length s > 0 && s.[0] = '[' then
      match take_port s with
      | Ok (p, rest) -> (Ok (Some p), rest)
      | Error e -> (Error e, s)
    else (Ok None, s)
  in
  match inp with
  | Error e -> Error e
  | Ok inp -> (
      let rest = String.trim rest in
      match String.index_opt rest '[' with
      | None ->
        if is_ident rest then Ok (inp, rest, None)
        else err "bad element name %S" rest
      | Some i -> (
          let name = String.trim (String.sub rest 0 i) in
          let tail = String.sub rest i (String.length rest - i) in
          if not (is_ident name) then err "bad element name %S" name
          else
            match take_port tail with
            | Error e -> Error e
            | Ok (p, after) ->
              if String.trim after <> "" then
                err "trailing junk after %S" name
              else Ok (inp, name, Some p)))

let parse_args rhs =
  (* "Class(a, b)" or "Class" -> (klass, args) *)
  let rhs = String.trim rhs in
  match String.index_opt rhs '(' with
  | None ->
    if is_ident rhs then Ok (rhs, [])
    else Error (Printf.sprintf "bad class name %S" rhs)
  | Some i ->
    let klass = String.trim (String.sub rhs 0 i) in
    if not (is_ident klass) then
      Error (Printf.sprintf "bad class name %S" klass)
    else if rhs.[String.length rhs - 1] <> ')' then
      Error (Printf.sprintf "missing ')' in %S" rhs)
    else
      let inner = String.sub rhs (i + 1) (String.length rhs - i - 2) in
      let args =
        if String.trim inner = "" then []
        else List.map String.trim (String.split_on_char ',' inner)
      in
      if List.exists (fun a -> a = "") args then
        Error (Printf.sprintf "empty argument in %S" rhs)
      else Ok (klass, args)

(* Split a line on "->" arrows. *)
let split_arrows line =
  let parts = ref [] in
  let buf = Buffer.create 32 in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && line.[!i] = '-' && line.[!i + 1] = '>' then begin
      parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf line.[!i];
      incr i
    end
  done;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let parse_raw text =
  let decls = ref [] and edges = ref [] in
  let error = ref None in
  let fail lineno fmt =
    Printf.ksprintf
      (fun m ->
         if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno m))
      fmt
  in
  List.iteri
    (fun idx line ->
       let lineno = idx + 1 in
       let line = String.trim (strip_comment line) in
       if line <> "" && !error = None then
         if contains_sub line "::" then begin
           match String.index_opt line ':' with
           | Some i
             when i + 1 < String.length line && line.[i + 1] = ':' ->
             let name = String.trim (String.sub line 0 i) in
             let rhs =
               String.sub line (i + 2) (String.length line - i - 2)
             in
             if not (is_ident name) then
               fail lineno "bad element name %S" name
             else (
               match parse_args rhs with
               | Error e -> fail lineno "%s" e
               | Ok (klass, args) ->
                 decls := { d_name = name; d_klass = klass; d_args = args }
                          :: !decls)
           | _ -> fail lineno "malformed declaration %S" line
         end
         else if contains_sub line "->" then begin
           let parts = split_arrows line in
           match
             List.fold_left
               (fun acc part ->
                  match acc with
                  | Error _ -> acc
                  | Ok eps -> (
                      match parse_endpoint part with
                      | Ok ep -> Ok (ep :: eps)
                      | Error e -> Error e))
               (Ok []) parts
           with
           | Error e -> fail lineno "%s" e
           | Ok eps -> (
               match List.rev eps with
               | [] | [ _ ] -> fail lineno "dangling '->'"
               | first :: rest ->
                 let (_, _, _) = first in
                 ignore
                   (List.fold_left
                      (fun (_, sname, sport) (dport_opt, dname, dport_out) ->
                         edges :=
                           { e_src = sname;
                             e_sport =
                               (match sport with Some p -> p | None -> 0);
                             e_dst = dname;
                             e_dport =
                               (match dport_opt with Some p -> p | None -> 0) }
                           :: !edges;
                         (dport_opt, dname, dport_out))
                      first rest))
         end
         else fail lineno "expected a declaration ('::') or a connection ('->')")
    (String.split_on_char '\n' text);
  match !error with
  | Some e -> Error e
  | None -> Ok { sp_decls = List.rev !decls; sp_edges = List.rev !edges }

(* Structural validation; returns per-declaration resolved port counts
   in declaration order. *)
let resolve spec =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* () = if spec.sp_decls = [] then err "empty graph" else Ok () in
  (* Unique names, known classes, valid arguments. *)
  let tbl = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc d ->
         let* () = acc in
         if Hashtbl.mem tbl d.d_name then
           err "element %s declared twice" d.d_name
         else
           match Hashtbl.find_opt classes d.d_klass with
           | None -> err "%s: unknown element class %s" d.d_name d.d_klass
           | Some ci -> (
               match ci.ci_check d.d_args with
               | Error e -> err "%s :: %s: %s" d.d_name d.d_klass e
               | Ok () ->
                 Hashtbl.replace tbl d.d_name (d, ci);
                 Ok ()))
      (Ok ()) spec.sp_decls
  in
  (* Edge endpoints exist. *)
  let* () =
    List.fold_left
      (fun acc e ->
         let* () = acc in
         let check n =
           if Hashtbl.mem tbl n then Ok ()
           else err "connection references undeclared element %s" n
         in
         let* () = check e.e_src in
         check e.e_dst)
      (Ok ()) spec.sp_edges
  in
  (* Push/pull discipline. *)
  let klass_of n = (fst (Hashtbl.find tbl n)).d_klass in
  let* () =
    List.fold_left
      (fun acc e ->
         let* () = acc in
         let sk = klass_of e.e_src and dk = klass_of e.e_dst in
         if sk = "Queue" && dk <> "Scheduler" then
           err
             "%s -> %s: a Queue's output is pull-driven and must feed a \
              Scheduler input"
             e.e_src e.e_dst
         else if dk = "Scheduler" && sk <> "Queue" then
           err
             "%s -> %s: a Scheduler pulls its inputs and accepts only Queue \
              outputs"
             e.e_src e.e_dst
         else Ok ())
      (Ok ()) spec.sp_edges
  in
  (* Resolve port counts and check every port is properly connected. *)
  let resolve_decl d =
    let _, ci = Hashtbl.find tbl d.d_name in
    let sports =
      List.filter_map
        (fun e -> if e.e_src = d.d_name then Some e.e_sport else None)
        spec.sp_edges
    in
    let dports =
      List.filter_map
        (fun e -> if e.e_dst = d.d_name then Some e.e_dport else None)
        spec.sp_edges
    in
    let max_port = List.fold_left max (-1) in
    (* Outputs: each port exactly once. *)
    let* n_out =
      let m = max_port sports in
      let* n =
        match ci.ci_out d.d_args with
        | Exact n ->
          if m >= n then
            err "%s has no output port %d (%s has %d)" d.d_name m d.d_klass n
          else Ok n
        | Range (lo, hi) ->
          if m >= hi then
            err "%s has no output port %d (%s has at most %d)" d.d_name m
              d.d_klass hi
          else Ok (max lo (m + 1))
      in
      let* () =
        List.fold_left
          (fun acc p ->
             let* () = acc in
             match List.length (List.filter (( = ) p) sports) with
             | 1 -> Ok ()
             | k -> err "output port %s[%d] connected %d times" d.d_name p k)
          (Ok ())
          (List.init n (fun i -> i))
      in
      Ok n
    in
    (* Inputs: each port connected; Scheduler inputs exactly once. *)
    let* n_in =
      let m = max_port dports in
      let* n =
        match ci.ci_in with
        | Exact n ->
          if m >= n then
            if n = 0 then err "%s (%s) takes no input" d.d_name d.d_klass
            else err "%s has no input port %d (%s has %d)" d.d_name m
                d.d_klass n
          else Ok n
        | Range (lo, hi) ->
          if m >= hi then
            err "%s has no input port %d (%s has at most %d)" d.d_name m
              d.d_klass hi
          else Ok (max lo (m + 1))
      in
      let* () =
        List.fold_left
          (fun acc p ->
             let* () = acc in
             let k = List.length (List.filter (( = ) p) dports) in
             if k = 0 then err "input port %s[%d] is unconnected" d.d_name p
             else if k > 1 && d.d_klass = "Scheduler" then
               err "Scheduler input %s[%d] has %d upstream Queues (want 1)"
                 d.d_name p k
             else Ok ())
          (Ok ())
          (List.init n (fun i -> i))
      in
      Ok n
    in
    Ok (d, n_in, n_out)
  in
  let* resolved =
    List.fold_left
      (fun acc d ->
         let* l = acc in
         let* r = resolve_decl d in
         Ok (r :: l))
      (Ok []) spec.sp_decls
  in
  let resolved = List.rev resolved in
  (* Cycle check: every cycle must pass through a Queue (whose output
     breaks the synchronous push chain). *)
  let* () =
    let adj = Hashtbl.create 16 in
    List.iter
      (fun e ->
         if klass_of e.e_src <> "Queue" then
           Hashtbl.replace adj e.e_src
             (e.e_dst :: (Option.value ~default:[] (Hashtbl.find_opt adj e.e_src))))
      spec.sp_edges;
    let color = Hashtbl.create 16 in
    (* 1 = in progress, 2 = done *)
    let rec dfs path n =
      match Hashtbl.find_opt color n with
      | Some 2 -> Ok ()
      | Some _ ->
        let cycle =
          let rec take = function
            | [] -> []
            | x :: tl -> if x = n then [ x ] else x :: take tl
          in
          List.rev (n :: take path)
        in
        err "cycle without an intervening Queue: %s"
          (String.concat " -> " cycle)
      | None ->
        Hashtbl.replace color n 1;
        let* () =
          List.fold_left
            (fun acc d ->
               let* () = acc in
               dfs (n :: path) d)
            (Ok ())
            (Option.value ~default:[] (Hashtbl.find_opt adj n))
        in
        Hashtbl.replace color n 2;
        Ok ()
    in
    List.fold_left
      (fun acc d ->
         let* () = acc in
         dfs [] d.d_name)
      (Ok ()) spec.sp_decls
  in
  Ok resolved

let parse text =
  match parse_raw text with
  | Error e -> Error e
  | Ok spec -> (
      match resolve spec with Error e -> Error e | Ok _ -> Ok spec)

let print spec =
  let b = Buffer.create 256 in
  List.iter
    (fun d ->
       Buffer.add_string b d.d_name;
       Buffer.add_string b " :: ";
       Buffer.add_string b d.d_klass;
       if d.d_args <> [] then begin
         Buffer.add_char b '(';
         Buffer.add_string b (String.concat ", " d.d_args);
         Buffer.add_char b ')'
       end;
       Buffer.add_char b '\n')
    spec.sp_decls;
  if spec.sp_edges <> [] then Buffer.add_char b '\n';
  let order = Hashtbl.create 16 in
  List.iteri (fun i d -> Hashtbl.replace order d.d_name i) spec.sp_decls;
  let idx n = Option.value ~default:max_int (Hashtbl.find_opt order n) in
  let edges =
    List.sort
      (fun a b ->
         match compare (idx a.e_src) (idx b.e_src) with
         | 0 -> compare a.e_sport b.e_sport
         | c -> c)
      spec.sp_edges
  in
  List.iter
    (fun e ->
       Buffer.add_string b e.e_src;
       if e.e_sport <> 0 then
         Buffer.add_string b (Printf.sprintf "[%d]" e.e_sport);
       Buffer.add_string b " -> ";
       if e.e_dport <> 0 then
         Buffer.add_string b (Printf.sprintf "[%d]" e.e_dport);
       Buffer.add_string b e.e_dst;
       Buffer.add_char b '\n')
    edges;
  Buffer.contents b

let sanitize_ident s =
  let s =
    String.map
      (fun c ->
         if
           (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9') || c = '_'
         then c
         else '_')
      s
  in
  if s = "" then "if_" else s

let default_config ~ifaces =
  let b = Buffer.create 256 in
  Buffer.add_string b "# default IPv4 forwarding path\n";
  List.iter
    (fun i ->
       Buffer.add_string b
         (Printf.sprintf "from_%s :: FromNetsim(%s)\n" (sanitize_ident i) i))
    ifaces;
  Buffer.add_string b
    "cls :: Classify(-)\n\
     chk :: CheckHeader\n\
     lpm :: LpmLookup\n\
     ttl :: DecTtl\n\
     q :: Queue(512)\n\
     sched :: Scheduler(8)\n\
     out :: ToNetsim\n\n";
  List.iter
    (fun i ->
       Buffer.add_string b
         (Printf.sprintf "from_%s -> cls\n" (sanitize_ident i)))
    ifaces;
  Buffer.add_string b
    "cls -> chk -> lpm -> ttl -> q -> sched -> out\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Runtime                                                            *)

type counters = {
  mutable c_rx : int;
  mutable c_tx : int;
  mutable c_drops : (string * (int ref * Telemetry.counter)) list;
}

type element = {
  el_name : string;
  el_klass : string;
  el_args : string list;
  el_n_in : int;
  el_n_out : int;
  el_kind : kind;
  el_gen : int;
  el_out : (element * int) option array;      (* length n_out *)
  el_pull : element option array;             (* Scheduler: upstream Queues *)
  el_c : counters;
  el_rx_m : Telemetry.counter;
  el_tx_m : Telemetry.counter;
}

and kind =
  | K_map of (Packet.t -> action)
  | K_tee
  | K_queue of queue_state
  | K_sched of sched_state
  | K_from of string
  | K_to_net

and queue_state = { q_cap : int; q_buf : Packet.t Queue.t }
and sched_state = { s_burst : int; mutable s_next : int; mutable s_armed : bool }

type t = {
  loop : Eventloop.t;
  lookup : Ipv4.t -> lookup_result option;
  tx : ifname:string -> dst:Ipv4.t -> string -> unit;
  ifaces : string list;
  mutable elements : element list;
  by_name : (string, element) Hashtbl.t;
  mutable sources : (string * element) list;  (* ifname -> FromNetsim *)
  mutable hook : (Packet.t -> [ `Forward | `Absorb ]) option;
  mutable gen : int;
  mutable dead : bool;
  mutable rx_bad : int;
  mutable rx_no_source : int;
}

let create ~loop ~lookup ~tx ~ifaces () =
  { loop; lookup; tx; ifaces; elements = []; by_name = Hashtbl.create 16;
    sources = []; hook = None; gen = 0; dead = false; rx_bad = 0;
    rx_no_source = 0 }

let drop el reason =
  let cell, metric =
    match List.assoc_opt reason el.el_c.c_drops with
    | Some pair -> pair
    | None ->
      let pair =
        ( ref 0,
          Telemetry.counter
            (telemetry_prefix ^ el.el_name ^ ".drop." ^ reason) )
      in
      el.el_c.c_drops <- (reason, pair) :: el.el_c.c_drops;
      pair
  in
  incr cell;
  Telemetry.incr metric

let count_rx el =
  el.el_c.c_rx <- el.el_c.c_rx + 1;
  Telemetry.incr el.el_rx_m

let count_tx el =
  el.el_c.c_tx <- el.el_c.c_tx + 1;
  Telemetry.incr el.el_tx_m

let rec push t el pkt =
  count_rx el;
  match el.el_kind with
  | K_map f -> (
      match f pkt with
      | Emit p when p >= 0 && p < el.el_n_out -> emit t el p pkt
      | Emit _ -> drop el "bad-port"
      | Kill reason -> drop el reason)
  | K_tee ->
    for p = el.el_n_out - 1 downto 1 do
      emit t el p (Packet.copy pkt)
    done;
    emit t el 0 pkt
  | K_queue q ->
    if Queue.length q.q_buf >= q.q_cap then drop el "overflow"
    else begin
      Queue.push pkt q.q_buf;
      match el.el_out.(0) with
      | Some (sched, _) -> arm t sched
      | None -> ()
    end
  | K_sched _ -> drop el "push-into-scheduler"
  | K_from _ -> emit t el 0 pkt
  | K_to_net ->
    let forward =
      match t.hook with
      | None -> true
      | Some h -> ( match h pkt with `Forward -> true | `Absorb -> false)
    in
    if forward then
      if Ipv4.equal pkt.Packet.nexthop Ipv4.zero then drop el "no-nexthop"
      else begin
        t.tx ~ifname:pkt.Packet.out_ifname ~dst:pkt.Packet.nexthop
          (Packet.to_wire pkt);
        count_tx el
      end
    else count_tx el

and emit t el port pkt =
  count_tx el;
  match el.el_out.(port) with
  | Some (dst, _) -> push t dst pkt
  | None -> ()

and arm t el =
  match el.el_kind with
  | K_sched s ->
    if (not s.s_armed) && not t.dead then begin
      s.s_armed <- true;
      Eventloop.defer t.loop (fun () -> run_sched t el)
    end
  | _ -> ()

and run_sched t el =
  match el.el_kind with
  | K_sched s ->
    s.s_armed <- false;
    (* A graph replaced while this event was in flight must not keep
       transmitting through its stale wiring. *)
    if (not t.dead) && el.el_gen = t.gen then begin
      let n = el.el_n_in in
      let pull_one () =
        let found = ref None in
        let tries = ref 0 in
        while !found = None && !tries < n do
          let i = s.s_next in
          s.s_next <- (s.s_next + 1) mod n;
          incr tries;
          match el.el_pull.(i) with
          | Some ({ el_kind = K_queue q; _ } as q_el)
            when not (Queue.is_empty q.q_buf) ->
            count_tx q_el;
            found := Some (Queue.pop q.q_buf)
          | _ -> ()
        done;
        !found
      in
      let budget = ref s.s_burst in
      let exhausted = ref false in
      while (not !exhausted) && !budget > 0 do
        match pull_one () with
        | Some pkt ->
          decr budget;
          count_rx el;
          emit t el 0 pkt
        | None -> exhausted := true
      done;
      let backlog =
        Array.exists
          (function
            | Some { el_kind = K_queue q; _ } -> not (Queue.is_empty q.q_buf)
            | _ -> false)
          el.el_pull
      in
      if backlog then arm t el
    end
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Instantiation                                                      *)

let make_element t ~gen ~name ~klass ~args ~n_in ~n_out ci =
  let kind =
    match ci.ci_impl with
    | I_map mk -> K_map (mk ~lookup:t.lookup ~args ~n_out)
    | I_from -> K_from (List.hd args)
    | I_to_net -> K_to_net
    | I_queue ->
      K_queue { q_cap = int_of_string (List.hd args); q_buf = Queue.create () }
    | I_sched ->
      K_sched
        { s_burst = int_of_string (List.hd args); s_next = 0; s_armed = false }
    | I_tee -> K_tee
  in
  { el_name = name; el_klass = klass; el_args = args; el_n_in = n_in;
    el_n_out = n_out; el_kind = kind; el_gen = gen;
    el_out = Array.make (max n_out 1) None;
    el_pull = Array.make (max n_in 1) None;
    el_c = { c_rx = 0; c_tx = 0; c_drops = [] };
    el_rx_m = Telemetry.counter (telemetry_prefix ^ name ^ ".rx");
    el_tx_m = Telemetry.counter (telemetry_prefix ^ name ^ ".tx") }

let install t spec =
  match resolve spec with
  | Error e -> Error e
  | Ok resolved -> (
      (* Environment checks before touching the running graph. *)
      let sources_err =
        let seen = Hashtbl.create 4 in
        List.fold_left
          (fun acc (d, _, _) ->
             match acc with
             | Error _ -> acc
             | Ok () ->
               if d.d_klass <> "FromNetsim" then Ok ()
               else
                 let ifname = List.hd d.d_args in
                 if not (List.mem ifname t.ifaces) then
                   Error
                     (Printf.sprintf "%s :: FromNetsim(%s): no such interface"
                        d.d_name ifname)
                 else if Hashtbl.mem seen ifname then
                   Error
                     (Printf.sprintf "two FromNetsim elements claim %s" ifname)
                 else begin
                   Hashtbl.replace seen ifname ();
                   Ok ()
                 end)
          (Ok ()) resolved
      in
      match sources_err with
      | Error e -> Error e
      | Ok () ->
        let gen = t.gen + 1 in
        t.gen <- gen;
        (* A new forwarding-path generation starts its metric namespace
           from zero, like a component restart does for "fea.". *)
        Telemetry.reset_prefix telemetry_prefix;
        Hashtbl.reset t.by_name;
        let elements =
          List.map
            (fun (d, n_in, n_out) ->
               let ci = Hashtbl.find classes d.d_klass in
               let el =
                 make_element t ~gen ~name:d.d_name ~klass:d.d_klass
                   ~args:d.d_args ~n_in ~n_out ci
               in
               Hashtbl.replace t.by_name d.d_name el;
               el)
            resolved
        in
        List.iter
          (fun e ->
             let s = Hashtbl.find t.by_name e.e_src in
             let d = Hashtbl.find t.by_name e.e_dst in
             s.el_out.(e.e_sport) <- Some (d, e.e_dport);
             match d.el_kind with
             | K_sched _ -> d.el_pull.(e.e_dport) <- Some s
             | _ -> ())
          spec.sp_edges;
        t.elements <- elements;
        t.sources <-
          List.filter_map
            (fun el ->
               match el.el_kind with
               | K_from ifname -> Some (ifname, el)
               | _ -> None)
            elements;
        Log.info (fun m ->
            m "installed element graph: %d elements, %d edges"
              (List.length elements)
              (List.length spec.sp_edges));
        Ok ())

let install_config t text =
  match parse text with Error e -> Error e | Ok spec -> install t spec

let current_spec t =
  let decls =
    List.map
      (fun el ->
         { d_name = el.el_name; d_klass = el.el_klass; d_args = el.el_args })
      t.elements
  in
  let edges =
    List.concat_map
      (fun el ->
         List.filter_map
           (fun p ->
              match el.el_out.(p) with
              | Some (d, dport) ->
                Some
                  { e_src = el.el_name; e_sport = p; e_dst = d.el_name;
                    e_dport = dport }
              | None -> None)
           (List.init el.el_n_out (fun i -> i)))
      t.elements
  in
  { sp_decls = decls; sp_edges = edges }

let config t = if t.elements = [] then "" else print (current_spec t)
let element_count t = List.length t.elements

let rx t ~ifname payload =
  if not t.dead then
    match Packet.of_wire payload with
    | Error _ ->
      t.rx_bad <- t.rx_bad + 1;
      Telemetry.incr (Telemetry.counter (telemetry_prefix ^ "rx.bad-packet"))
    | Ok pkt -> (
        pkt.Packet.in_ifname <- ifname;
        match List.assoc_opt ifname t.sources with
        | Some el -> push t el pkt
        | None ->
          t.rx_no_source <- t.rx_no_source + 1;
          Telemetry.incr
            (Telemetry.counter (telemetry_prefix ^ "rx.no-source")))

let inject t ~ifname pkt =
  if t.dead then Error "data plane is shut down"
  else
    match List.assoc_opt ifname t.sources with
    | None -> Error (Printf.sprintf "no FromNetsim element on %s" ifname)
    | Some el ->
      pkt.Packet.in_ifname <- ifname;
      push t el pkt;
      Ok ()

let set_tx_hook t hook = t.hook <- hook

let shutdown t = t.dead <- true

(* ------------------------------------------------------------------ *)
(* Runtime reconfiguration                                            *)

let insert_element t ~name ~klass ~args ~after ~port =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* () = if t.elements = [] then err "no graph installed" else Ok () in
  let* () =
    if not (is_ident name) then err "bad element name %S" name
    else if Hashtbl.mem t.by_name name then
      err "element %s already exists" name
    else Ok ()
  in
  let* ci =
    match Hashtbl.find_opt classes klass with
    | None -> err "unknown element class %s" klass
    | Some ci -> Ok ci
  in
  let* () =
    match ci.ci_check args with
    | Error e -> err "%s :: %s: %s" name klass e
    | Ok () -> Ok ()
  in
  let* () =
    let in_ok = match ci.ci_in with Exact 1 -> true | _ -> false in
    let out_ok =
      match ci.ci_out args with
      | Exact 1 -> true
      | Range (lo, hi) -> lo <= 1 && 1 <= hi
      | Exact _ -> false
    in
    if in_ok && out_ok then Ok ()
    else err "%s is not a one-input one-output class" klass
  in
  let* up =
    match Hashtbl.find_opt t.by_name after with
    | None -> err "no element %s in the running graph" after
    | Some up -> Ok up
  in
  let* () =
    match up.el_kind with
    | K_queue _ ->
      err
        "cannot insert on the pull edge between Queue %s and its Scheduler"
        after
    | _ -> Ok ()
  in
  let* dst, dport =
    if port < 0 || port >= up.el_n_out then
      err "%s has no output port %d" after port
    else
      match up.el_out.(port) with
      | None -> err "output %s[%d] is not connected" after port
      | Some x -> Ok x
  in
  let el =
    make_element t ~gen:t.gen ~name ~klass ~args ~n_in:1 ~n_out:1 ci
  in
  el.el_out.(0) <- Some (dst, dport);
  up.el_out.(port) <- Some (el, 0);
  Hashtbl.replace t.by_name name el;
  (* Keep declaration order topological-ish: right after the upstream. *)
  t.elements <-
    List.concat_map
      (fun e -> if e == up then [ e; el ] else [ e ])
      t.elements;
  Log.info (fun m ->
      m "inserted %s :: %s after %s[%d]" name klass after port);
  Ok ()

let remove_element t ~name =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* el =
    match Hashtbl.find_opt t.by_name name with
    | None -> err "no element %s in the running graph" name
    | Some el -> Ok el
  in
  let* () =
    match el.el_kind with
    | K_queue _ | K_sched _ ->
      err "%s defines the push/pull boundary and cannot be spliced out" name
    | _ ->
      if el.el_n_in = 1 && el.el_n_out = 1 then Ok ()
      else err "%s is not a one-input one-output element" name
  in
  let downstream = el.el_out.(0) in
  List.iter
    (fun up ->
       Array.iteri
         (fun p o ->
            match o with
            | Some (d, _) when d == el -> up.el_out.(p) <- downstream
            | _ -> ())
         up.el_out)
    t.elements;
  Hashtbl.remove t.by_name name;
  t.elements <- List.filter (fun e -> not (e == el)) t.elements;
  Log.info (fun m -> m "removed element %s" name);
  Ok ()

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)

type stats = {
  st_name : string;
  st_klass : string;
  st_args : string list;
  st_rx : int;
  st_tx : int;
  st_drops : (string * int) list;
}

let stats t =
  List.map
    (fun el ->
       { st_name = el.el_name; st_klass = el.el_klass; st_args = el.el_args;
         st_rx = el.el_c.c_rx; st_tx = el.el_c.c_tx;
         st_drops =
           List.sort compare
             (List.map
                (fun (r, (cell, _)) -> (r, !cell))
                el.el_c.c_drops) })
    t.elements

let render t =
  if t.elements = [] then "no element graph installed\n"
  else begin
    let b = Buffer.create 512 in
    Buffer.add_string b (config t);
    Buffer.add_char b '\n';
    Buffer.add_string b
      (Printf.sprintf "%-16s %-14s %10s %10s  %s\n" "ELEMENT" "CLASS" "RX"
         "TX" "DROPS");
    List.iter
      (fun s ->
         let drops =
           if s.st_drops = [] then "-"
           else
             String.concat ", "
               (List.map
                  (fun (r, n) -> Printf.sprintf "%s=%d" r n)
                  s.st_drops)
         in
         Buffer.add_string b
           (Printf.sprintf "%-16s %-14s %10d %10d  %s\n" s.st_name
              s.st_klass s.st_rx s.st_tx drops))
      (stats t);
    if t.rx_bad > 0 || t.rx_no_source > 0 then
      Buffer.add_string b
        (Printf.sprintf "ingress: %d bad packets, %d with no source element\n"
           t.rx_bad t.rx_no_source);
    Buffer.contents b
  end
