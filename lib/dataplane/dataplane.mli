(** A Click-style composable data plane: the forwarding path is a
    directed graph of small packet-processing {e elements} connected by
    ports, assembled from a line-oriented textual configuration — the
    paper's extensibility argument (§5) taken below the control plane.

    {b Push and pull.} Most connections are {e push}: an upstream
    element processes a packet and hands it straight downstream in the
    same call stack. A [Queue] converts push to pull: packets pushed
    into it wait until the downstream [Scheduler] — the only element
    with pull inputs — drains them in round-robin bursts from a
    deferred event, which is what decouples ingress from egress. The
    grammar enforces the discipline: a Queue's output may only feed a
    Scheduler input, and every cycle must pass through a Queue.

    {b Element catalogue} (see docs/DATAPLANE.md for details):
    [FromNetsim(ifname)], [Classify(p1, p2, ...)], [CheckHeader],
    [LpmLookup], [DecTtl], [Queue(cap)], [Scheduler(burst)],
    [ToNetsim], [Drop(reason)], [Count], [Tee(n)] — plus any class
    added at runtime with {!register_map_class}.

    {b Counters.} Every element keeps local rx/tx/per-reason-drop
    counts (reported by {!stats}) and mirrors them into the global
    telemetry registry under [dataplane.<element>.*], which is what
    [xorp_top] and [show dataplane] render. *)

type t

(** {1 Configuration grammar}

    Line-oriented, Click-like. [#] starts a comment. A declaration is
    [name :: Class(arg, arg)] (parentheses optional when there are no
    arguments); a connection is [a -> b], with explicit ports written
    [a\[1\] -> \[0\]b] and port 0 implied when omitted. Chains
    ([a -> b -> c]) expand to pairwise edges. {!parse} validates the
    whole graph — every port connected, push/pull discipline, no
    queueless cycle — so an installed graph cannot misroute a packet
    into a missing port. *)

type spec
(** A parsed, validated graph description (no live state). *)

val parse : string -> (spec, string) result
(** Parse and validate. The error names the offending element, port,
    or line. *)

val print : spec -> string
(** Canonical rendering: declarations in order, then one edge per
    line. [parse] of the result yields an equal spec, and printing is
    a fixed point ([print (parse (print s)) = print s]). *)

val default_config : ifaces:string list -> string
(** The standard IPv4 path over the given interfaces: per-interface
    [FromNetsim] fanning into
    [Classify(-) -> CheckHeader -> LpmLookup -> DecTtl -> Queue(512)
    -> Scheduler(8) -> ToNetsim]. *)

(** {1 Lifecycle} *)

type lookup_result = {
  lr_nexthop : Ipv4.t;
  lr_ifname : string;
  lr_connected : bool;
      (** destination is on-link: forward to the packet's own
          destination address rather than [lr_nexthop] *)
}

val create :
  loop:Eventloop.t ->
  lookup:(Ipv4.t -> lookup_result option) ->
  tx:(ifname:string -> dst:Ipv4.t -> string -> unit) ->
  ifaces:string list ->
  unit -> t
(** An empty data plane bound to its environment: [lookup] is the
    forwarding-table decision ([LpmLookup] calls it), [tx] transmits a
    wire-form packet out of an interface ([ToNetsim] calls it), and
    [ifaces] names the interfaces [FromNetsim] may bind to. No graph
    is installed yet; packets arriving via {!rx} are counted and
    dropped until {!install} succeeds. *)

val install : t -> spec -> (unit, string) result
(** Replace the running graph wholesale. Packets queued in the old
    graph are discarded and all [dataplane.*] telemetry is zeroed (a
    new forwarding-path generation). Fails — leaving the old graph
    running — if a [FromNetsim] names an unknown interface or two
    claim the same one. *)

val install_config : t -> string -> (unit, string) result
(** [parse] + {!install}. *)

val config : t -> string
(** Canonical configuration of the {e running} graph (reflects runtime
    inserts/removals); [""] when no graph is installed. *)

val element_count : t -> int

val shutdown : t -> unit
(** Stop processing: subsequent {!rx}/{!inject} are ignored and armed
    schedulers do nothing when their deferred event fires. *)

(** {1 Packet flow} *)

val rx : t -> ifname:string -> string -> unit
(** A wire-form packet arrived on [ifname]: decode it and push it into
    that interface's [FromNetsim] element. Malformed packets and
    packets for an interface with no [FromNetsim] are counted
    ([dataplane.rx.bad-packet], [dataplane.rx.no-source]) and dropped. *)

val inject : t -> ifname:string -> Packet.t -> (unit, string) result
(** Push an already-decoded packet into [ifname]'s [FromNetsim]
    (tests and the simtest invariant probe). *)

val set_tx_hook : t -> (Packet.t -> [ `Forward | `Absorb ]) option -> unit
(** Observation tap on [ToNetsim]: the hook sees every packet about to
    leave the graph and decides whether it is also transmitted
    ([`Forward]) or swallowed ([`Absorb] — used by probes that must
    not disturb the simulated network). *)

(** {1 Runtime reconfiguration (§5: dynamic stages)}

    Both operations rewire the running graph between packets — the
    event loop is single-threaded, so a splice is atomic with respect
    to packet processing and queued packets are preserved. *)

val insert_element :
  t -> name:string -> klass:string -> args:string list ->
  after:string -> port:int -> (unit, string) result
(** Splice a new one-in/one-out element into the edge leaving
    [after]'s output [port]. Fails on the pull edge between a [Queue]
    and its [Scheduler] (a push element cannot live there). *)

val remove_element : t -> name:string -> (unit, string) result
(** Splice a one-in/one-out element out, reconnecting its upstreams to
    its downstream. [Queue] and [Scheduler] elements cannot be removed
    this way (they define the push/pull boundary). *)

(** {1 Introspection} *)

type stats = {
  st_name : string;
  st_klass : string;
  st_args : string list;
  st_rx : int;                     (** packets entering the element *)
  st_tx : int;                     (** packets leaving on any port *)
  st_drops : (string * int) list;  (** per-reason drop counts *)
}

val stats : t -> stats list
(** Per-element counters, in graph declaration order. These are local
    to this instance (unlike the telemetry mirror, which is global to
    the process). *)

val render : t -> string
(** Operator-facing text: the configuration followed by a counter
    table ([xorpsh]'s [show dataplane]). *)

(** {1 Extending the element catalogue}

    New packet-processing logic plugs in without touching this module
    — the data-plane analogue of the paper's claim that new protocols
    plug in without touching the core. *)

type action =
  | Emit of int     (** send the packet on this output port *)
  | Kill of string  (** drop it, counted under this reason *)

val register_map_class :
  ?n_out:int * int ->
  string ->
  check:(string list -> (unit, string) result) ->
  make:(args:string list -> n_out:int -> (Packet.t -> action)) ->
  unit
(** Register a one-input element class available to every subsequent
    {!parse}/{!install}/{!insert_element}. [n_out] is the allowed
    range of output-port counts (default [(1, 1)]); the actual count
    is determined by the connections in the graph. [check] validates
    the configuration arguments at parse time; [make] builds the
    per-packet function for one instance. Re-registering a name
    replaces the class; built-in classes cannot be replaced. *)

val telemetry_prefix : string
(** ["dataplane."] — the metric namespace all element counters live
    under. *)
