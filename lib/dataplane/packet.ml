type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  mutable ttl : int;
  proto : int;
  payload : string;
  mutable in_ifname : string;
  mutable out_ifname : string;
  mutable nexthop : Ipv4.t;
}

let make ?(ttl = 64) ?(proto = 0) ?(payload = "") ~src ~dst () =
  if ttl < 0 || ttl > 255 then invalid_arg "Packet.make: ttl";
  if proto < 0 || proto > 255 then invalid_arg "Packet.make: proto";
  { src; dst; ttl; proto; payload; in_ifname = ""; out_ifname = "";
    nexthop = Ipv4.zero }

let copy t = { t with ttl = t.ttl }

(* Wire form: magic "DP", ttl, proto, then src and dst as 4 bytes each
   in network order; the payload follows verbatim. *)
let header_len = 12

let put_addr b a =
  let o1, o2, o3, o4 = Ipv4.to_octets a in
  Buffer.add_char b (Char.chr o1);
  Buffer.add_char b (Char.chr o2);
  Buffer.add_char b (Char.chr o3);
  Buffer.add_char b (Char.chr o4)

let to_wire t =
  let b = Buffer.create (header_len + String.length t.payload) in
  Buffer.add_string b "DP";
  Buffer.add_char b (Char.chr (t.ttl land 0xff));
  Buffer.add_char b (Char.chr (t.proto land 0xff));
  put_addr b t.src;
  put_addr b t.dst;
  Buffer.add_string b t.payload;
  Buffer.contents b

let get_addr s off =
  Ipv4.of_octets
    (Char.code s.[off]) (Char.code s.[off + 1])
    (Char.code s.[off + 2]) (Char.code s.[off + 3])

let of_wire s =
  if String.length s < header_len then
    Error (Printf.sprintf "short packet: %d bytes" (String.length s))
  else if not (s.[0] = 'D' && s.[1] = 'P') then Error "bad magic"
  else
    let ttl = Char.code s.[2] in
    let proto = Char.code s.[3] in
    let src = get_addr s 4 in
    let dst = get_addr s 8 in
    let payload = String.sub s header_len (String.length s - header_len) in
    Ok (make ~ttl ~proto ~payload ~src ~dst ())

let to_string t =
  Printf.sprintf "%s -> %s ttl=%d proto=%d len=%d%s%s" (Ipv4.to_string t.src)
    (Ipv4.to_string t.dst) t.ttl t.proto (String.length t.payload)
    (if t.in_ifname = "" then "" else " in=" ^ t.in_ifname)
    (if t.out_ifname = "" then ""
     else
       Printf.sprintf " out=%s via %s" t.out_ifname (Ipv4.to_string t.nexthop))
