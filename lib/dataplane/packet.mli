(** The packet that flows through the data-plane element graph.

    A deliberately small IPv4-ish datagram: enough header to make the
    forwarding decisions real (TTL, protocol, addresses), plus the
    per-hop annotations a forwarding path computes (ingress interface,
    egress interface, next hop). The annotations travel with the packet
    between elements but are {e not} part of the wire form — exactly
    like Click's packet annotations. *)

type t = {
  src : Ipv4.t;
  dst : Ipv4.t;
  mutable ttl : int;          (** 0..255; decremented by [DecTtl] *)
  proto : int;                (** 0..255; matched by [Classify] *)
  payload : string;
  (* Annotations (not serialized): *)
  mutable in_ifname : string;  (** set on ingress by the data plane *)
  mutable out_ifname : string; (** set by [LpmLookup] *)
  mutable nexthop : Ipv4.t;    (** set by [LpmLookup]; the address the
                                   egress transmit targets *)
}

val make :
  ?ttl:int -> ?proto:int -> ?payload:string ->
  src:Ipv4.t -> dst:Ipv4.t -> unit -> t
(** Fresh packet with empty annotations. [ttl] defaults to 64,
    [proto] to 0, [payload] to [""]. *)

val copy : t -> t
(** Independent copy (used by [Tee]; annotations are copied too). *)

val header_len : int
(** Bytes of wire header preceding the payload (12). *)

val to_wire : t -> string
(** Serialize header + payload. Annotations are not serialized. *)

val of_wire : string -> (t, string) result
(** Parse a wire form; [Error] explains the malformation. The parsed
    packet has empty annotations. *)

val to_string : t -> string
(** One-line debug rendering. *)
