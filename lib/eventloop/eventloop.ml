let src = Logs.Src.create "xorp.eventloop" ~doc:"camlXORP event loop"

module Log = (val Logs.src_log src : Logs.LOG)

type timer = {
  mutable deadline : float;
  mutable action : action;
  mutable cancelled : bool;
  tloop : t_ref;
}

and action =
  | Once of (unit -> unit)
  | Periodic of float * (unit -> bool)

and task = {
  weight : int;
  slice : unit -> [ `Continue | `Done ];
  mutable live : bool;
  task_loop : t_ref;
}

and t = {
  mode : [ `Real | `Sim ];
  mutable vclock : float;
  timers : timer Minheap.t;
  mutable live_timers : int;
  deferred : (unit -> unit) Queue.t;
  tasks : task Queue.t;
  mutable live_tasks : int;
  readers : (Unix.file_descr, unit -> unit) Hashtbl.t;
  writers : (Unix.file_descr, unit -> unit) Hashtbl.t;
  mutable stopping : bool;
  mutable dispatched : int;
  mutable tie_break : (int -> int) option;
  (* Cross-domain injection ([post]): the only fields of [t] that any
     other domain may touch, always under [posted_mu]. Everything else
     is owned by the loop's domain. *)
  posted : (unit -> unit) Queue.t;
  posted_mu : Mutex.t;
  (* Self-pipe ([`Real] mode only): [post] writes a byte so a loop
     blocked in [select] wakes immediately. Never registered in
     [readers], so it does not count as work for [has_work]/[run]. *)
  wake_rd : Unix.file_descr option;
  wake_wr : Unix.file_descr option;
}

and t_ref = t

let create ?(mode = `Sim) () =
  let wake_rd, wake_wr =
    match mode with
    | `Sim -> (None, None)
    | `Real ->
      let rd, wr = Unix.pipe () in
      Unix.set_nonblock rd;
      Unix.set_nonblock wr;
      (Some rd, Some wr)
  in
  {
    mode;
    vclock = 0.0;
    timers = Minheap.create ();
    live_timers = 0;
    deferred = Queue.create ();
    tasks = Queue.create ();
    live_tasks = 0;
    readers = Hashtbl.create 8;
    writers = Hashtbl.create 8;
    stopping = false;
    dispatched = 0;
    tie_break = None;
    posted = Queue.create ();
    posted_mu = Mutex.create ();
    wake_rd;
    wake_wr;
  }

let mode t = t.mode
let set_tie_break t f = t.tie_break <- f

let now t =
  match t.mode with
  | `Real -> Unix.gettimeofday ()
  | `Sim -> t.vclock

let at t time cb =
  let tm = { deadline = time; action = Once cb; cancelled = false; tloop = t } in
  Minheap.push t.timers time tm;
  t.live_timers <- t.live_timers + 1;
  tm

let after t delay cb = at t (now t +. delay) cb

let periodic t ival cb =
  if ival <= 0.0 then invalid_arg "Eventloop.periodic";
  let tm =
    { deadline = now t +. ival; action = Periodic (ival, cb);
      cancelled = false; tloop = t }
  in
  Minheap.push t.timers tm.deadline tm;
  t.live_timers <- t.live_timers + 1;
  tm

let cancel tm =
  if not tm.cancelled then begin
    tm.cancelled <- true;
    tm.tloop.live_timers <- tm.tloop.live_timers - 1
  end

let timer_pending tm = not tm.cancelled
let defer t cb = Queue.push cb t.deferred

let add_task t ?(weight = 1) slice =
  if weight < 1 then invalid_arg "Eventloop.add_task";
  let task = { weight; slice; live = true; task_loop = t } in
  Queue.push task t.tasks;
  t.live_tasks <- t.live_tasks + 1;
  task

let task_live task = task.live

(* Retirement is the single place the counter goes down, guarded so a
   task removed and then reaped (or removed twice) decrements exactly
   once: [live_tasks] is always the number of tasks that still have
   slices to run, which [quiescent] and [run_until_idle] rely on. *)
let retire_task task =
  if task.live then begin
    task.live <- false;
    task.task_loop.live_tasks <- task.task_loop.live_tasks - 1
  end

let remove_task = retire_task

(* [post] is callable from any domain: it only touches [posted] (under
   the mutex) and the write end of the self-pipe. One wakeup byte per
   empty-to-non-empty transition is enough — the loop drains the whole
   queue every iteration. *)
let post t cb =
  Mutex.lock t.posted_mu;
  let was_empty = Queue.is_empty t.posted in
  Queue.push cb t.posted;
  Mutex.unlock t.posted_mu;
  if was_empty then
    match t.wake_wr with
    | None -> ()
    | Some fd ->
      (try ignore (Unix.single_write fd (Bytes.make 1 '!') 0 1) with
       | Unix.Unix_error
           ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
         -> ())

let posted_pending t =
  Mutex.lock t.posted_mu;
  let p = not (Queue.is_empty t.posted) in
  Mutex.unlock t.posted_mu;
  p

(* Loop-domain only: move posted closures into the deferred queue so
   they run with ordinary deferred-event semantics this iteration. *)
let drain_posted t =
  Mutex.lock t.posted_mu;
  Queue.transfer t.posted t.deferred;
  Mutex.unlock t.posted_mu

let drain_wake t =
  match t.wake_rd with
  | None -> ()
  | Some fd ->
    let buf = Bytes.create 64 in
    let rec go () =
      match Unix.read fd buf 0 64 with
      | 64 -> go ()
      | _ -> ()
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    in
    go ()

let add_reader t fd cb = Hashtbl.replace t.readers fd cb
let remove_reader t fd = Hashtbl.remove t.readers fd
let add_writer t fd cb = Hashtbl.replace t.writers fd cb
let remove_writer t fd = Hashtbl.remove t.writers fd

let dispatch t cb =
  t.dispatched <- t.dispatched + 1;
  try cb () with
  | exn ->
    Log.err (fun m ->
        m "callback raised %s; continuing" (Printexc.to_string exn))

(* Run the deferred events queued at entry (new deferrals run on the
   next iteration, so a self-deferring event cannot starve timers). *)
let run_deferred t =
  let n = Queue.length t.deferred in
  for _ = 1 to n do
    match Queue.take_opt t.deferred with
    | Some cb -> dispatch t cb
    | None -> ()
  done;
  n > 0

let fire_one t tm =
  match tm.action with
  | Once cb ->
    tm.cancelled <- true;
    t.live_timers <- t.live_timers - 1;
    dispatch t cb
  | Periodic (ival, cb) ->
    let continue = ref false in
    t.dispatched <- t.dispatched + 1;
    (try continue := cb () with
     | exn ->
       Log.err (fun m ->
           m "periodic timer raised %s; stopping it" (Printexc.to_string exn)));
    if !continue && not tm.cancelled then begin
      (* Advance from the scheduled deadline to avoid drift, but
         never reschedule into the past. *)
      let next = ref (tm.deadline +. ival) in
      while !next <= now t do next := !next +. ival done;
      tm.deadline <- !next;
      Minheap.push t.timers !next tm
    end
    else if not tm.cancelled then begin
      tm.cancelled <- true;
      t.live_timers <- t.live_timers - 1
    end

(* One timer sweep. Only heap entries that existed when the sweep
   started are eligible: a timer scheduled by a callback we dispatch —
   even with a deadline in the past — waits for the next loop
   iteration, so it fires exactly once there and a self-rescheduling
   past-deadline timer cannot spin this sweep forever.

   Equal-deadline timers fire in FIFO (scheduling) order unless a
   [tie_break] hook is installed, in which case the hook picks which of
   the n due same-deadline timers fires next — the deterministic
   schedule-fuzzing point used by the simulation harness. *)
let fire_due_timers t progressed =
  let cutoff = Minheap.stamp t.timers in
  let rec sweep progressed =
    match Minheap.peek_entry t.timers with
    | Some (_, _, tm) when tm.cancelled ->
      ignore (Minheap.pop t.timers);
      sweep progressed
    | Some (deadline, seq, tm) when seq < cutoff && deadline <= now t ->
      ignore (Minheap.pop t.timers);
      (match t.tie_break with
       | None ->
         fire_one t tm;
         sweep true
       | Some pick ->
         (* Collect the whole batch of due timers sharing this deadline
            (scheduled before the sweep), then dispatch them in the
            order the hook chooses. *)
         let batch = ref [ tm ] in
         let rec collect () =
           match Minheap.peek_entry t.timers with
           | Some (_, _, tm') when tm'.cancelled ->
             ignore (Minheap.pop t.timers);
             collect ()
           | Some (d', s', tm') when d' = deadline && s' < cutoff ->
             ignore (Minheap.pop t.timers);
             batch := tm' :: !batch;
             collect ()
           | _ -> ()
         in
         collect ();
         let arr = Array.of_list (List.rev !batch) in
         let n = ref (Array.length arr) in
         while !n > 0 do
           let i = if !n = 1 then 0 else pick !n in
           let i = if i < 0 || i >= !n then 0 else i in
           let tm' = arr.(i) in
           arr.(i) <- arr.(!n - 1);
           n := !n - 1;
           (* A batch member's callback may cancel a later member. *)
           if not tm'.cancelled then fire_one t tm'
         done;
         sweep true)
    | _ -> progressed
  in
  sweep progressed

(* Run one background task for [weight] slices, round-robin. *)
let run_one_task t =
  let rec skim () =
    match Queue.take_opt t.tasks with
    | None -> false
    | Some task when not task.live ->
      (* Already retired by [remove_task]; just drop the queue slot. *)
      skim ()
    | Some task ->
      let rec slices n =
        if n = 0 || not task.live then `Continue
        else
          match (try task.slice () with
                 | exn ->
                   Log.err (fun m ->
                       m "background task raised %s; retiring it"
                         (Printexc.to_string exn));
                   `Done)
          with
          | `Done -> `Done
          | `Continue -> slices (n - 1)
      in
      t.dispatched <- t.dispatched + 1;
      (match slices task.weight with
       | `Done -> retire_task task
       | `Continue -> if task.live then Queue.push task t.tasks);
      true
  in
  skim ()

let next_deadline t =
  let rec peek () =
    match Minheap.peek t.timers with
    | Some (_, tm) when tm.cancelled ->
      ignore (Minheap.pop t.timers);
      peek ()
    | Some (deadline, _) -> Some deadline
    | None -> None
  in
  peek ()

let poll_fds t timeout =
  let rds = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.readers [] in
  let rds = match t.wake_rd with Some fd -> fd :: rds | None -> rds in
  let wrs = Hashtbl.fold (fun fd _ acc -> fd :: acc) t.writers [] in
  if rds = [] && wrs = [] then begin
    if timeout > 0.0 then Unix.sleepf (min timeout 0.1);
    false
  end
  else begin
    match Unix.select rds wrs [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    | rready, wready, _ ->
      List.iter
        (fun fd ->
           if t.wake_rd = Some fd then drain_wake t
           else
             match Hashtbl.find_opt t.readers fd with
             | Some cb -> dispatch t cb
             | None -> ())
        rready;
      List.iter
        (fun fd ->
           match Hashtbl.find_opt t.writers fd with
           | Some cb -> dispatch t cb
           | None -> ())
        wready;
      rready <> [] || wready <> []
  end

let has_work t =
  not (Queue.is_empty t.deferred)
  || t.live_timers > 0 || t.live_tasks > 0
  || posted_pending t
  || (t.mode = `Real
      && (Hashtbl.length t.readers > 0 || Hashtbl.length t.writers > 0))

(* One iteration; [cap] bounds how far the virtual clock may jump. *)
let run_once_capped t cap =
  drain_posted t;
  let progressed = run_deferred t in
  let progressed = fire_due_timers t progressed in
  let progressed =
    match t.mode with
    | `Real ->
      let timeout =
        if progressed || t.live_tasks > 0
           || not (Queue.is_empty t.deferred)
           || posted_pending t
        then 0.0
        else
          match next_deadline t with
          | Some d -> max 0.0 (min (d -. now t) 0.1)
          | None -> 0.1
      in
      let fd_progress = poll_fds t timeout in
      progressed || fd_progress
    | `Sim -> progressed
  in
  if progressed then true
  else if not (Queue.is_empty t.deferred) then true
  else if run_one_task t then true
  else
    match t.mode with
    | `Real -> has_work t
    | `Sim ->
      (match next_deadline t with
       | Some d ->
         let target = match cap with Some c -> min d c | None -> d in
         if target > t.vclock then begin
           t.vclock <- target;
           true
         end
         else target = d (* due now; next iteration fires it *)
       | None ->
         (match cap with
          | Some c when c > t.vclock ->
            t.vclock <- c;
            false
          | _ -> false))

let run_once t = run_once_capped t None

let run ?(until = fun () -> false) t =
  t.stopping <- false;
  let rec loop () =
    if t.stopping || until () then ()
    else if run_once t then loop ()
    else ()
  in
  loop ()

let run_until_time t target =
  t.stopping <- false;
  (* Keep iterating while now <= target so that work due exactly at the
     target time runs before we return. *)
  let rec loop () =
    if t.stopping || now t > target then ()
    else begin
      let progress = run_once_capped t (Some target) in
      if progress then loop ()
    end
  in
  loop ()

let run_until_idle t =
  t.stopping <- false;
  let work_now () =
    (not (Queue.is_empty t.deferred))
    || t.live_tasks > 0
    || posted_pending t
    || (match next_deadline t with Some d -> d <= now t | None -> false)
  in
  while (not t.stopping) && work_now () do
    ignore (run_once_capped t (Some (now t)))
  done

let stop t = t.stopping <- true
let events_dispatched t = t.dispatched
let live_timers t = t.live_timers
let live_tasks t = t.live_tasks

let quiescent t =
  Queue.is_empty t.deferred
  && t.live_tasks = 0
  && (not (posted_pending t))
  && (match next_deadline t with Some d -> d > now t | None -> true)
