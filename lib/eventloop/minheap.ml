type 'a entry = { prio : float; seq : int; v : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable len : int;
  mutable seq : int;
}

let create () = { arr = [||]; len = 0; seq = 0 }
let size h = h.len
let is_empty h = h.len = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow h e =
  let cap = Array.length h.arr in
  if h.len >= cap then begin
    let ncap = max 16 (2 * cap) in
    let na = Array.make ncap e in
    Array.blit h.arr 0 na 0 h.len;
    h.arr <- na
  end

let push h prio v =
  let e = { prio; seq = h.seq; v } in
  h.seq <- h.seq + 1;
  grow h e;
  h.arr.(h.len) <- e;
  h.len <- h.len + 1;
  (* sift up *)
  let i = ref (h.len - 1) in
  while !i > 0 && less h.arr.(!i) h.arr.((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    let tmp = h.arr.(p) in
    h.arr.(p) <- h.arr.(!i);
    h.arr.(!i) <- tmp;
    i := p
  done

let stamp h = h.seq

let peek h =
  if h.len = 0 then None
  else
    let e = h.arr.(0) in
    Some (e.prio, e.v)

let peek_entry h =
  if h.len = 0 then None
  else
    let e = h.arr.(0) in
    Some (e.prio, e.seq, e.v)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && less h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && less h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.prio, top.v)
  end

let clear h =
  h.arr <- [||];
  h.len <- 0
