(** Single-threaded event loop — the core of the XORP programming model
    (paper §4).

    Everything in camlXORP is event-driven: callbacks are dispatched on
    timer expiry, file-descriptor readiness, and deferred events, and
    events are processed to completion. Long-running work (deleting a
    full routing table, re-filtering after a policy change) runs as a
    {e background task}: a cooperative slice of work invoked only when
    no events are pending, exactly as §4 describes.

    Two clock modes:
    - [`Real]: [now] is wall-clock time ([Unix.gettimeofday]) and idle
      periods block in [select] on registered file descriptors.
    - [`Sim]: [now] is a virtual clock that jumps instantaneously to the
      next timer deadline when the loop is otherwise idle, making long
      experiments (Figure 13's 255 seconds) run in milliseconds and
      fully deterministically. *)

type t

val create : ?mode:[ `Real | `Sim ] -> unit -> t
(** Default mode is [`Sim]; a virtual clock starts at time 0. *)

val mode : t -> [ `Real | `Sim ]

val now : t -> float
(** Current time in seconds: wall-clock ([`Real]) or virtual ([`Sim]). *)

(** {1 Timers} *)

type timer

val at : t -> float -> (unit -> unit) -> timer
(** [at loop time cb] fires [cb] once at absolute [time]. Times in the
    past (or negative) fire {e exactly once, on the next iteration} —
    never synchronously within the current timer sweep, even when
    scheduled from inside another timer's callback, in both [`Real] and
    [`Sim] modes. *)

val after : t -> float -> (unit -> unit) -> timer
(** [after loop delay cb] fires once [delay] seconds from [now]. *)

val periodic : t -> float -> (unit -> bool) -> timer
(** [periodic loop ival cb] fires every [ival] seconds for as long as
    [cb] returns [true]. *)

val cancel : timer -> unit
(** Idempotent; a cancelled timer never fires again. *)

val timer_pending : timer -> bool

(** {1 Deferred events}

    A deferred event runs on the current loop iteration, after events
    already queued — the mechanism components use to schedule work
    "immediately, but not re-entrantly". *)

val defer : t -> (unit -> unit) -> unit

(** {1 Cross-domain injection}

    Everything else in this interface is single-domain: a loop and all
    its timers, tasks and callbacks belong to the domain that runs it.
    [post] is the one exception — the wakeup half of the cross-domain
    mailbox contract (see docs/CONCURRENCY.md). *)

val post : t -> (unit -> unit) -> unit
(** [post loop cb] hands [cb] to [loop] from {e any} domain: it is
    queued thread-safely and runs on the loop's own domain with
    deferred-event semantics on the next iteration. In [`Real] mode a
    self-pipe wakes a loop blocked in [select] immediately; in [`Sim]
    mode the closure is picked up the next time the loop is driven
    (the virtual clock has no blocking wait to interrupt). Posted work
    counts as pending work for {!quiescent} exactly like a deferred
    event.
    [cb] runs on the loop's domain, so it may touch loop-owned state;
    the values it captures must not be mutated by the posting domain
    afterwards. *)

(** {1 Background tasks (§4, §5.1.2)} *)

type task

val add_task : t -> ?weight:int -> (unit -> [ `Continue | `Done ]) -> task
(** [add_task loop f] registers a background task. [f] is called for
    one slice of work whenever the loop has no events to process; it
    returns [`Continue] to be rescheduled or [`Done] to retire. Tasks
    are scheduled round-robin; [weight] (default 1) gives a task that
    many consecutive slices per round. *)

val remove_task : task -> unit
(** Idempotent. The task's [live_tasks] slot is released immediately —
    [live_tasks]/[quiescent] never count removed-but-not-yet-swept
    tasks — though its queue slot is reclaimed lazily. *)

val task_live : task -> bool

(** {1 File descriptors ([`Real] mode)} *)

val add_reader : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Replaces any previous read callback for the descriptor. *)

val remove_reader : t -> Unix.file_descr -> unit
val add_writer : t -> Unix.file_descr -> (unit -> unit) -> unit
val remove_writer : t -> Unix.file_descr -> unit

(** {1 Running} *)

val run_once : t -> bool
(** One iteration: dispatch deferred events, fire due timers, poll file
    descriptors, else run one background-task slice, else ([`Sim])
    advance the virtual clock to the next deadline. Returns [false]
    when the loop made no progress (fully idle with nothing pending —
    in [`Real] mode after an up-to-100ms [select] wait). *)

val run : ?until:(unit -> bool) -> t -> unit
(** Iterate until [until ()] is true (checked between iterations) or
    the loop is fully idle. *)

val run_until_time : t -> float -> unit
(** Run until [now] reaches the given absolute time. In [`Sim] mode the
    clock never overshoots: it stops exactly at the target even if the
    next timer is later. *)

val run_until_idle : t -> unit
(** Run until no deferred events, no due work and no background tasks
    remain. Pending {e future} timers do not count as work here; this
    drains "everything that can happen now". *)

val stop : t -> unit
(** Make the innermost [run] return after the current iteration. *)

val events_dispatched : t -> int
(** Total callbacks dispatched since creation (tests and benches). *)

(** {1 Determinism and inspection (simulation harness)} *)

val set_tie_break : t -> (int -> int) option -> unit
(** Install (or clear) the equal-deadline tie-break hook. By default,
    timers sharing a deadline fire in the order they were scheduled
    (FIFO). With a hook, each time a batch of [n >= 1] same-deadline
    timers comes due the hook is called with the number of candidates
    still to fire and returns the index (in [0..n-1], out-of-range
    values clamp to 0) of the one to dispatch next. Driving the hook
    from a seeded PRNG explores alternative event orderings while
    keeping every run fully determined by the seed. *)

val live_timers : t -> int
(** Timers scheduled and not yet fired or cancelled (leak checks). *)

val live_tasks : t -> int
(** Background tasks registered and not yet retired. *)

val quiescent : t -> bool
(** No deferred events, no background tasks, and no timer due at the
    current time: nothing can happen until the clock advances. *)
