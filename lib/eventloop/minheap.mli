(** Array-based binary min-heap, used for the event loop's timer queue.

    Entries are compared by a float priority with an insertion sequence
    number as tie-break, so equal-deadline timers fire in the order they
    were scheduled. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio]. O(log n). *)

val peek : 'a t -> (float * 'a) option
(** Smallest entry without removing it. O(1). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest entry. O(log n). *)

val clear : 'a t -> unit
