(** Array-based binary min-heap, used for the event loop's timer queue.

    Entries are compared by a float priority with an insertion sequence
    number as tie-break, so equal-deadline timers fire in the order they
    were scheduled. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio]. O(log n). *)

val peek : 'a t -> (float * 'a) option
(** Smallest entry without removing it. O(1). *)

val peek_entry : 'a t -> (float * int * 'a) option
(** Smallest entry as [(priority, insertion seq, value)]. The seq lets
    callers distinguish entries pushed before/after a point in time
    (see {!stamp}) without popping them. O(1). *)

val stamp : 'a t -> int
(** The insertion counter: every entry pushed from now on has
    [seq >= stamp h], every entry already inside has a smaller seq.
    Used by the event loop to keep a timer sweep from firing timers
    that the sweep's own callbacks scheduled. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest entry. O(log n). *)

val clear : 'a t -> unit
