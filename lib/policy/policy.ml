type value =
  | Int of int
  | Str of string
  | Bool of bool
  | Addr of Ipv4.t
  | Net of Ipv4net.t

let value_to_string = function
  | Int i -> string_of_int i
  | Str s -> s
  | Bool b -> string_of_bool b
  | Addr a -> Ipv4.to_string a
  | Net n -> Ipv4net.to_string n

let value_equal a b =
  match a, b with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Addr x, Addr y -> Ipv4.equal x y
  | Net x, Net y -> Ipv4net.equal x y
  | (Int _ | Str _ | Bool _ | Addr _ | Net _), _ -> false

type verdict = Accept | Reject | Default

type route_ctx = {
  get_attr : string -> value option;
  set_attr : string -> value -> (unit, string) result;
}

type instr =
  | Push of value
  | Load of string
  | Store of string
  | Dup
  | Pop
  | Swap
  | Add
  | Sub
  | Mul
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Not
  | Within       (* net within net *)
  | Contains     (* net contains (net|addr) *)
  | Prefix_len   (* net -> int *)
  | Jmp of int
  | Jfalse of int
  | Accept_i
  | Reject_i

type program = instr array

let instruction_count p = Array.length p

(* --- compiler ------------------------------------------------------- *)

let compile source =
  let exception Bad of int * string in
  let fail line fmt = Printf.ksprintf (fun s -> raise (Bad (line, s))) fmt in
  try
    let lines = String.split_on_char '\n' source in
    (* First pass: tokenize, collect labels. *)
    let labels = Hashtbl.create 8 in
    let raw = ref [] in (* (line_no, tokens) for real instructions *)
    let count = ref 0 in
    List.iteri
      (fun idx line ->
         let lineno = idx + 1 in
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let tokens =
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun s -> s <> "")
         in
         match tokens with
         | [] -> ()
         | [ "label"; name ] ->
           if Hashtbl.mem labels name then fail lineno "duplicate label %s" name;
           Hashtbl.replace labels name !count
         | "label" :: _ -> fail lineno "label takes exactly one name"
         | tokens ->
           raw := (lineno, tokens) :: !raw;
           incr count)
      lines;
    let raw = List.rev !raw in
    let resolve lineno name =
      match Hashtbl.find_opt labels name with
      | Some target -> target
      | None -> fail lineno "unknown label %s" name
    in
    let parse_instr (lineno, tokens) =
      match tokens with
      | [ "push.u32"; v ] | [ "push.i32"; v ] ->
        (match int_of_string_opt v with
         | Some i -> Push (Int i)
         | None -> fail lineno "bad integer %s" v)
      | [ "push.str"; v ] -> Push (Str v)
      | [ "push.bool"; "true" ] -> Push (Bool true)
      | [ "push.bool"; "false" ] -> Push (Bool false)
      | [ "push.bool"; v ] -> fail lineno "bad bool %s" v
      | [ "push.addr"; v ] ->
        (match Ipv4.of_string v with
         | Some a -> Push (Addr a)
         | None -> fail lineno "bad address %s" v)
      | [ "push.net"; v ] ->
        (match Ipv4net.of_string v with
         | Some n -> Push (Net n)
         | None -> fail lineno "bad prefix %s" v)
      | [ "load"; attr ] -> Load attr
      | [ "store"; attr ] -> Store attr
      | [ "dup" ] -> Dup
      | [ "pop" ] -> Pop
      | [ "swap" ] -> Swap
      | [ "add" ] -> Add
      | [ "sub" ] -> Sub
      | [ "mul" ] -> Mul
      | [ "eq" ] -> Eq
      | [ "ne" ] -> Ne
      | [ "lt" ] -> Lt
      | [ "le" ] -> Le
      | [ "gt" ] -> Gt
      | [ "ge" ] -> Ge
      | [ "and" ] -> And
      | [ "or" ] -> Or
      | [ "not" ] -> Not
      | [ "within" ] -> Within
      | [ "contains" ] -> Contains
      | [ "prefix_len" ] -> Prefix_len
      | [ "jmp"; l ] -> Jmp (resolve lineno l)
      | [ "jfalse"; l ] -> Jfalse (resolve lineno l)
      | [ "accept" ] -> Accept_i
      | [ "reject" ] -> Reject_i
      | op :: _ -> fail lineno "unknown or malformed instruction %s" op
      | [] -> assert false
    in
    Ok (Array.of_list (List.map parse_instr raw))
  with Bad (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

(* --- VM ------------------------------------------------------------- *)

let step_limit = 100_000

let eval (prog : program) ctx =
  let exception Fault of string in
  let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt in
  let stack = ref [] in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
      stack := rest;
      v
    | [] -> fault "stack underflow"
  in
  let pop_int () =
    match pop () with Int i -> i | v -> fault "expected int, got %s" (value_to_string v)
  in
  let pop_bool () =
    match pop () with Bool b -> b | v -> fault "expected bool, got %s" (value_to_string v)
  in
  let pop_net () =
    match pop () with Net n -> n | v -> fault "expected prefix, got %s" (value_to_string v)
  in
  let compare_vals a b =
    match a, b with
    | Int x, Int y -> Int.compare x y
    | Str x, Str y -> String.compare x y
    | Addr x, Addr y -> Ipv4.compare x y
    | Net x, Net y -> Ipv4net.compare x y
    | Bool x, Bool y -> Bool.compare x y
    | _ ->
      fault "cannot compare %s with %s" (value_to_string a) (value_to_string b)
  in
  let n = Array.length prog in
  try
    let steps = ref 0 in
    let pc = ref 0 in
    let verdict = ref None in
    while !verdict = None && !pc < n do
      incr steps;
      if !steps > step_limit then fault "step limit exceeded";
      let i = !pc in
      incr pc;
      match prog.(i) with
      | Push v -> push v
      | Load attr ->
        (match ctx.get_attr attr with
         | Some v -> push v
         | None -> fault "unknown attribute %s" attr)
      | Store attr ->
        let v = pop () in
        (match ctx.set_attr attr v with
         | Ok () -> ()
         | Error msg -> fault "store %s: %s" attr msg)
      | Dup ->
        let v = pop () in
        push v;
        push v
      | Pop -> ignore (pop ())
      | Swap ->
        let a = pop () in
        let b = pop () in
        push a;
        push b
      | Add ->
        let b = pop_int () in
        let a = pop_int () in
        push (Int (a + b))
      | Sub ->
        let b = pop_int () in
        let a = pop_int () in
        push (Int (a - b))
      | Mul ->
        let b = pop_int () in
        let a = pop_int () in
        push (Int (a * b))
      | Eq ->
        let b = pop () in
        let a = pop () in
        push (Bool (value_equal a b))
      | Ne ->
        let b = pop () in
        let a = pop () in
        push (Bool (not (value_equal a b)))
      | Lt ->
        let b = pop () in
        let a = pop () in
        push (Bool (compare_vals a b < 0))
      | Le ->
        let b = pop () in
        let a = pop () in
        push (Bool (compare_vals a b <= 0))
      | Gt ->
        let b = pop () in
        let a = pop () in
        push (Bool (compare_vals a b > 0))
      | Ge ->
        let b = pop () in
        let a = pop () in
        push (Bool (compare_vals a b >= 0))
      | And ->
        let b = pop_bool () in
        let a = pop_bool () in
        push (Bool (a && b))
      | Or ->
        let b = pop_bool () in
        let a = pop_bool () in
        push (Bool (a || b))
      | Not -> push (Bool (not (pop_bool ())))
      | Within ->
        let outer = pop_net () in
        let inner = pop_net () in
        push (Bool (Ipv4net.contains outer inner))
      | Contains ->
        let v = pop () in
        let outer = pop_net () in
        (match v with
         | Net inner -> push (Bool (Ipv4net.contains outer inner))
         | Addr a -> push (Bool (Ipv4net.contains_addr outer a))
         | v -> fault "contains expects prefix or address, got %s" (value_to_string v))
      | Prefix_len -> push (Int (Ipv4net.prefix_len (pop_net ())))
      | Jmp target -> pc := target
      | Jfalse target -> if not (pop_bool ()) then pc := target
      | Accept_i -> verdict := Some Accept
      | Reject_i -> verdict := Some Reject
    done;
    Ok (Option.value !verdict ~default:Default)
  with Fault msg -> Error msg

let always_accept : program = [| Accept_i |]
let always_reject : program = [| Reject_i |]

let ctx_of_table table ?(read_only = []) () =
  {
    get_attr = (fun name -> Hashtbl.find_opt table name);
    set_attr =
      (fun name v ->
         if List.mem name read_only then Error "read-only attribute"
         else if not (Hashtbl.mem table name) then Error "unknown attribute"
         else begin
           Hashtbl.replace table name v;
           Ok ()
         end);
  }
