(** The routing-policy stack language (paper §8.3).

    XORP's policy framework adds stages to the BGP and RIB pipelines,
    "each of which supports a common simple stack language for
    operating on routes". This module is that language: a small,
    protocol-agnostic stack VM. Protocols expose their routes to it
    through a {!route_ctx} of named attributes, so the same compiled
    program filters BGP routes, RIB redistributions, or any future
    protocol's routes.

    {2 Source syntax}

    One instruction per line; [#] starts a comment. Example — set
    localpref 200 on routes inside 10.0.0.0/8, reject 192.168.0.0/16,
    accept the rest unchanged:

    {v
    # prefer our own space
    load network
    push.net 10.0.0.0/8
    within
    jfalse not_ours
    push.u32 200
    store localpref
    accept
    label not_ours
    load network
    push.net 192.168.0.0/16
    within
    jfalse done
    reject
    label done
    v}

    Instructions: [push.u32 N], [push.i32 N], [push.str S], [push.bool
    B], [push.addr A], [push.net P], [load ATTR], [store ATTR], [dup],
    [pop], [swap], arithmetic [add sub mul], comparisons [eq ne lt le
    gt ge], boolean [and or not], prefix tests [within contains
    prefix_len], [label L], [jmp L], [jfalse L], [accept], [reject].

    A program that falls off the end yields {!verdict} [Default]:
    the route passes unmodified (attribute stores that already ran are
    kept — stores are applied to a scratch copy that the caller commits
    only on [Accept] or [Default]). *)

type value =
  | Int of int
  | Str of string
  | Bool of bool
  | Addr of Ipv4.t
  | Net of Ipv4net.t

val value_to_string : value -> string
val value_equal : value -> value -> bool

type verdict =
  | Accept   (** Explicit accept; modifications apply. *)
  | Reject   (** Drop the route; modifications are discarded. *)
  | Default  (** Fell off the end: pass through with modifications. *)

type route_ctx = {
  get_attr : string -> value option;
  set_attr : string -> value -> (unit, string) result;
}
(** How the VM sees a route. [get_attr] returns [None] for unknown
    attributes (a load of an unknown attribute is a runtime error);
    [set_attr] may refuse (read-only attribute, wrong type). *)

type program

val compile : string -> (program, string) result
(** Compile source text. Errors carry a line number. *)

val instruction_count : program -> int

val eval : program -> route_ctx -> (verdict, string) result
(** Run the program against a route. [Error] reports runtime faults
    (stack underflow, type error, unknown attribute, step limit). The
    VM is bounded to 100,000 steps, so a malicious filter cannot hang
    the router — extensions run inside a budget. *)

val always_accept : program
val always_reject : program

val ctx_of_table :
  (string, value) Hashtbl.t -> ?read_only:string list -> unit -> route_ctx
(** Convenience context backed by a mutable attribute table. *)
