(** Patricia (path-compressed binary radix) tree keyed by IPv4
    prefixes — the routing-table store used throughout camlXORP.

    The tree is mutable: routing tables are updated in place while
    background tasks walk them, which is exactly the feature-interaction
    problem §5.3 of the paper solves with {e safe iterators}. Each node
    carries a reference count of iterators currently pointing at it; a
    deleted node whose count is nonzero is emptied but kept in place,
    and the last iterator to leave it performs the physical removal.

    Traversal order is pre-order on the binary trie, i.e. lexicographic
    by (network address, prefix length): a prefix is visited before the
    more-specific prefixes nested inside it. *)

type 'a t

val create : unit -> 'a t

val insert : 'a t -> Ipv4net.t -> 'a -> 'a option
(** [insert t net v] binds [net] to [v], returning the previous binding
    if one existed. *)

val remove : 'a t -> Ipv4net.t -> 'a option
(** [remove t net] deletes the binding for [net] and returns it, or
    [None] if absent. The node is physically removed only when no
    iterator points at it. *)

val find : 'a t -> Ipv4net.t -> 'a option
(** Exact-match lookup. *)

val longest_match : 'a t -> Ipv4.t -> (Ipv4net.t * 'a) option
(** Most-specific stored prefix containing the address. *)

val longest_match_net : 'a t -> Ipv4net.t -> (Ipv4net.t * 'a) option
(** Most-specific stored prefix containing the whole given prefix
    (including an exact match). *)

val has_strictly_inside : 'a t -> Ipv4net.t -> bool
(** Does the tree contain a binding whose key is a {e proper} subset of
    [net]? Used by the RIB's interest-registration logic. *)

val largest_enclosing_hole : 'a t -> Ipv4.t -> Ipv4net.t
(** The interest-registration computation of §5.2.1 / Figure 8:
    the largest subnet [s] such that [s] contains the address, [s] is
    within the longest-match route for the address (or within /0 if
    there is none), and no strictly more-specific route overlaps [s].
    Clients may cache the longest-match answer for every address
    in [s]. *)

val size : 'a t -> int
(** Number of bindings (O(1)). *)

val containing : 'a t -> Ipv4net.t -> (Ipv4net.t * 'a) list
(** All bindings whose key contains the given prefix (including an
    exact match), least-specific first. O(key length). *)

val fold_within :
  'a t -> Ipv4net.t -> (Ipv4net.t -> 'a -> 'acc -> 'acc) -> 'acc -> 'acc
(** Fold over bindings whose key is a subset of (or equal to) the given
    prefix, in pre-order. *)

val iter : (Ipv4net.t -> 'a -> unit) -> 'a t -> unit
(** Pre-order iteration over bindings. The tree must not be modified
    during [iter]; use {!Safe_iter} when it might be. *)

val fold : (Ipv4net.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val to_list : 'a t -> (Ipv4net.t * 'a) list
val clear : 'a t -> unit

(** Iterators that remain valid across arbitrary tree mutation (§5.3).

    An iterator pins its current node via a reference count. Deleting
    the pinned binding empties the node but leaves it navigable; the
    iterator steps off it normally and triggers the deferred physical
    removal. Bindings inserted mid-walk in the not-yet-visited region
    are observed; already-passed insertions are not. *)
module Safe_iter : sig
  type 'a it

  val start : 'a t -> 'a it
  (** Position before the first binding; call {!next} to begin. *)

  val next : 'a it -> (Ipv4net.t * 'a) option
  (** Advance to the next live binding, or [None] at the end. After
      [None] the iterator is released. *)

  val stop : 'a it -> unit
  (** Release the iterator early (idempotent). *)

  val pinned : 'a it -> Ipv4net.t option
  (** The key the iterator currently pins, if any (for tests). *)
end

val check_invariants : 'a t -> (string, string) result
(** Structural self-check (keys nest correctly, counts agree, no
    dangling empty leaves unpinned). [Ok]: description; [Error]: what
    is broken. Test-suite hook. *)

(** {1 Prefix-range sharding (multicore pipeline)}

    Trie-aligned partition of the IPv4 prefix space into [shards]
    contiguous ranges, used to split the BGP decision and RIB stages
    across domains (docs/CONCURRENCY.md). With [k] the smallest integer
    such that [2{^k} >= shards], the 2{^k} top-bit buckets are mapped
    onto shards in order; every prefix maps to exactly one shard via
    the top [k] bits of its canonical (host-bits-zero) network address,
    so a /k-aligned block and all its more-specifics share a shard.
    Prefixes shorter than /k are owned by the shard of their zero-filled
    address. *)

val shard_bits : int -> int
(** [shard_bits shards] is the number of leading address bits the
    partition inspects: the smallest [k] with [2{^k} >= shards].
    @raise Invalid_argument if [shards < 1]. *)

val shard_of : shards:int -> Ipv4net.t -> int
(** [shard_of ~shards net] is the shard (in [0 .. shards-1]) that owns
    [net]. Total, deterministic, and monotone in the network address:
    each shard owns one contiguous range of the address space.
    @raise Invalid_argument if [shards < 1]. *)

val split_points : shards:int -> Ipv4net.t list
(** The [shards] range-start prefixes, in shard order: element [s] is
    the /[k] prefix at which shard [s]'s range begins (element 0 is
    always [0.0.0.0/k]). Documentation and invariant-checking helper
    for the partition {!shard_of} implements. *)

val partition : shards:int -> 'a t -> 'a t array
(** [partition ~shards t] splits [t] into [shards] new trees by
    {!shard_of}; element [s] holds exactly the bindings whose key maps
    to shard [s]. [t] is not modified. *)

val merge_disjoint : 'a t array -> 'a t
(** Union of trees with pairwise-disjoint key sets — the quiescent-point
    merge used to compare a sharded table against its single-domain
    equivalent.
    @raise Invalid_argument if the same key appears in two trees. *)
