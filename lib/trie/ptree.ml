type 'a node = {
  key : Ipv4net.t;
  mutable value : 'a option;
  mutable left : 'a node option;
  mutable right : 'a node option;
  mutable parent : 'a node option;
  mutable refs : int; (* safe-iterator pins *)
}

type 'a t = { root : 'a node; mutable count : int }

let make_node ?parent key value =
  { key; value; left = None; right = None; parent; refs = 0 }

let create () = { root = make_node Ipv4net.default None; count = 0 }

(* Which child slot of [n] does a prefix extending [n.key] fall into?
   Determined by the first bit past n.key's length. *)
let branch_bit n addr = Ipv4.bit addr (Ipv4net.prefix_len n.key)
let child n right = if right then n.right else n.left

let set_child n right c =
  if right then n.right <- c else n.left <- c

let slot_of n c =
  (* Which slot of [n] holds node [c]? Physical identity. *)
  match n.left, n.right with
  | Some l, _ when l == c -> false
  | _, Some r when r == c -> true
  | _ -> invalid_arg "Ptree.slot_of: not a child"

(* Longest common prefix of two prefixes (both interpreted as bit
   strings): the glue-node key when two keys diverge. *)
let common_prefix n1 n2 =
  let a1 = Ipv4.to_int (Ipv4net.network n1) and a2 = Ipv4.to_int (Ipv4net.network n2) in
  let maxlen = min (Ipv4net.prefix_len n1) (Ipv4net.prefix_len n2) in
  let x = a1 lxor a2 in
  let rec clz i = if i >= 32 || (x lsr (31 - i)) land 1 = 1 then i else clz (i + 1) in
  let l = min maxlen (clz 0) in
  Ipv4net.make (Ipv4.of_int a1) l

let strictly_contains outer inner =
  Ipv4net.contains outer inner && Ipv4net.prefix_len outer < Ipv4net.prefix_len inner

let insert t net v =
  let rec go n =
    if Ipv4net.equal n.key net then begin
      let old = n.value in
      n.value <- Some v;
      if old = None then t.count <- t.count + 1;
      old
    end
    else begin
      (* n.key strictly contains net here. *)
      let right = branch_bit n (Ipv4net.network net) in
      match child n right with
      | None ->
        let leaf = make_node ~parent:n net (Some v) in
        set_child n right (Some leaf);
        t.count <- t.count + 1;
        None
      | Some c ->
        if Ipv4net.equal c.key net || strictly_contains c.key net then go c
        else if strictly_contains net c.key then begin
          (* Splice a new node for net between n and c. *)
          let m = make_node ~parent:n net (Some v) in
          set_child m (branch_bit m (Ipv4net.network c.key)) (Some c);
          c.parent <- Some m;
          set_child n right (Some m);
          t.count <- t.count + 1;
          None
        end
        else begin
          (* Diverge: glue node at the common prefix, c and a fresh
             leaf underneath. *)
          let gkey = common_prefix net c.key in
          let g = make_node ~parent:n gkey None in
          let leaf = make_node ~parent:g net (Some v) in
          let c_right = branch_bit g (Ipv4net.network c.key) in
          set_child g c_right (Some c);
          set_child g (not c_right) (Some leaf);
          c.parent <- Some g;
          set_child n right (Some g);
          t.count <- t.count + 1;
          None
        end
    end
  in
  go t.root

(* Deepest node whose key equals [net], or None. *)
let rec find_node n net =
  if Ipv4net.equal n.key net then Some n
  else if strictly_contains n.key net then
    match child n (branch_bit n (Ipv4net.network net)) with
    | Some c when Ipv4net.contains c.key net -> find_node c net
    | _ -> None
  else None

let find t net =
  match find_node t.root net with
  | Some n -> n.value
  | None -> None

let n_children n =
  (match n.left with Some _ -> 1 | None -> 0)
  + (match n.right with Some _ -> 1 | None -> 0)

(* Physically remove empty, unpinned nodes, walking up as detachment
   creates new removable ancestors. *)
let rec prune n =
  match n.parent with
  | None -> () (* root stays *)
  | Some p ->
    if n.value = None && n.refs = 0 then begin
      match n.left, n.right with
      | None, None ->
        set_child p (slot_of p n) None;
        prune p
      | Some c, None | None, Some c ->
        set_child p (slot_of p n) (Some c);
        c.parent <- Some p
      | Some _, Some _ -> ()
    end

let remove t net =
  match find_node t.root net with
  | None -> None
  | Some n ->
    (match n.value with
     | None -> None
     | Some _ as old ->
       n.value <- None;
       t.count <- t.count - 1;
       prune n;
       old)

let longest_match t addr =
  let rec go n best =
    let best = match n.value with
      | Some v -> Some (n.key, v)
      | None -> best
    in
    if Ipv4net.prefix_len n.key >= 32 then best
    else
      match child n (branch_bit n addr) with
      | Some c when Ipv4net.contains_addr c.key addr -> go c best
      | _ -> best
  in
  go t.root None

let longest_match_net t net =
  let rec go n best =
    let best = match n.value with
      | Some v -> Some (n.key, v)
      | None -> best
    in
    if Ipv4net.prefix_len n.key >= 32 then best
    else
      match child n (branch_bit n (Ipv4net.network net)) with
      | Some c when Ipv4net.contains c.key net -> go c best
      | _ -> best
  in
  go t.root None

(* Topmost node whose key is a subset of [net], if any. *)
let locate_subtree t net =
  let rec go n =
    if Ipv4net.contains net n.key then Some n
    else if strictly_contains n.key net then
      match child n (branch_bit n (Ipv4net.network net)) with
      | Some c -> go c
      | None -> None
    else None
  in
  go t.root

let rec subtree_has_value n =
  n.value <> None
  || (match n.left with Some c -> subtree_has_value c | None -> false)
  || (match n.right with Some c -> subtree_has_value c | None -> false)

let has_strictly_inside t net =
  match locate_subtree t net with
  | None -> false
  | Some r ->
    if Ipv4net.equal r.key net then
      (match r.left with Some c -> subtree_has_value c | None -> false)
      || (match r.right with Some c -> subtree_has_value c | None -> false)
    else subtree_has_value r

let largest_enclosing_hole t addr =
  let base = match longest_match t addr with
    | Some (net, _) -> net
    | None -> Ipv4net.default
  in
  let rec narrow cand =
    if Ipv4net.prefix_len cand >= 32 || not (has_strictly_inside t cand) then cand
    else narrow (Ipv4net.make addr (Ipv4net.prefix_len cand + 1))
  in
  narrow base

let size t = t.count

let containing t net =
  let rec go n acc =
    let acc = match n.value with
      | Some v -> (n.key, v) :: acc
      | None -> acc
    in
    if Ipv4net.equal n.key net || Ipv4net.prefix_len n.key >= 32 then acc
    else
      match child n (branch_bit n (Ipv4net.network net)) with
      | Some c when Ipv4net.contains c.key net -> go c acc
      | _ -> acc
  in
  List.rev (go t.root [])

let fold_within t net f init =
  match locate_subtree t net with
  | None -> init
  | Some r ->
    let rec go n acc =
      let acc = match n.value with
        | Some v -> f n.key v acc
        | None -> acc
      in
      let acc = match n.left with Some c -> go c acc | None -> acc in
      match n.right with Some c -> go c acc | None -> acc
    in
    go r init

let iter f t =
  let rec go n =
    (match n.value with Some v -> f n.key v | None -> ());
    (match n.left with Some c -> go c | None -> ());
    (match n.right with Some c -> go c | None -> ())
  in
  go t.root

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let clear t =
  t.root.value <- None;
  t.root.left <- None;
  t.root.right <- None;
  t.count <- 0

module Safe_iter = struct
  type 'a it = {
    tree : 'a t;
    mutable cur : 'a node option; (* None = before the first binding *)
    mutable live : bool;
  }

  let start tree = { tree; cur = None; live = true }

  (* Structural pre-order successor, navigating by parent pointers so
     no stack can go stale across mutations. *)
  let struct_succ n =
    match n.left, n.right with
    | Some c, _ | None, Some c -> Some c
    | None, None ->
      let rec climb c =
        match c.parent with
        | None -> None
        | Some p ->
          if (match p.left with Some l -> l == c | None -> false) then
            match p.right with
            | Some r -> Some r
            | None -> climb p
          else climb p
      in
      climb n

  let unpin it =
    match it.cur with
    | None -> ()
    | Some n ->
      n.refs <- n.refs - 1;
      if n.value = None then prune n

  let stop it =
    if it.live then begin
      unpin it;
      it.cur <- None;
      it.live <- false
    end

  let next it =
    if not it.live then None
    else begin
      let rec seek = function
        | None -> None
        | Some n ->
          if n.value <> None then Some n else seek (struct_succ n)
      in
      let succ = match it.cur with
        | None -> seek (Some it.tree.root)
        | Some n -> seek (struct_succ n)
      in
      match succ with
      | None ->
        stop it;
        None
      | Some n ->
        n.refs <- n.refs + 1;
        unpin it;
        it.cur <- Some n;
        (match n.value with
         | Some v -> Some (n.key, v)
         | None -> assert false)
    end

  let pinned it =
    match it.cur with
    | Some n -> Some n.key
    | None -> None
end

let check_invariants t =
  let exception Bad of string in
  let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
  let count = ref 0 in
  let rec walk n =
    if n.value <> None then incr count;
    if n.parent = None && not (n == t.root) then
      fail "non-root node %a has no parent" Ipv4net.pp n.key;
    if n.value = None && n.refs = 0 && not (n == t.root) && n_children n < 2
    then fail "unpruned empty node %a" Ipv4net.pp n.key;
    let check_child right = function
      | None -> ()
      | Some c ->
        if not (strictly_contains n.key c.key) then
          fail "child %a not inside parent %a" Ipv4net.pp c.key Ipv4net.pp n.key;
        if branch_bit n (Ipv4net.network c.key) <> right then
          fail "child %a in wrong slot of %a" Ipv4net.pp c.key Ipv4net.pp n.key;
        (match c.parent with
         | Some p when p == n -> ()
         | _ -> fail "bad parent pointer at %a" Ipv4net.pp c.key);
        walk c
    in
    check_child false n.left;
    check_child true n.right
  in
  match walk t.root with
  | () ->
    if !count <> t.count then
      Error (Printf.sprintf "count mismatch: stored %d, found %d" t.count !count)
    else Ok (Printf.sprintf "%d bindings, structure consistent" t.count)
  | exception Bad msg -> Error msg

(* Prefix-range sharding (multicore pipeline): buckets are the 2^k
   possible values of the top k address bits, mapped onto [shards]
   contiguous ranges. Using the canonical (host-bits-zero) network
   address makes the function total over prefixes of any length:
   every more-specific prefix of a /k block lands in that block's
   bucket, and prefixes shorter than /k go to the bucket of their
   zero-filled address. *)

let shard_bits shards =
  if shards < 1 then invalid_arg "Ptree.shard_bits";
  let rec go k = if 1 lsl k >= shards then k else go (k + 1) in
  go 0

let shard_of ~shards net =
  let k = shard_bits shards in
  if k = 0 then 0
  else
    let bucket = Ipv4.to_int (Ipv4net.network net) lsr (32 - k) in
    bucket * shards / (1 lsl k)

let split_points ~shards =
  let k = shard_bits shards in
  List.init shards (fun s ->
      (* Smallest bucket owned by shard [s]. *)
      let b = (s * (1 lsl k) + shards - 1) / shards in
      Ipv4net.make (Ipv4.of_int (b lsl (32 - k))) k)

let partition ~shards t =
  let parts = Array.init shards (fun _ -> create ()) in
  iter (fun net v -> ignore (insert parts.(shard_of ~shards net) net v)) t;
  parts

let merge_disjoint parts =
  let out = create () in
  Array.iter
    (fun part ->
       iter
         (fun net v ->
            match insert out net v with
            | None -> ()
            | Some _ ->
              invalid_arg
                (Printf.sprintf "Ptree.merge_disjoint: duplicate key %s"
                   (Ipv4net.to_string net)))
         part)
    parts;
  out
