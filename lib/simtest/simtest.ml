(* Deterministic whole-router simulation harness (see simtest.mli).

   Everything an execution does is a function of the scenario's master
   seed: the seed derives separate PRNG streams for transport chaos,
   XRL virtual latency, timer tie-breaks and feed content; the Finders
   get seeded method keys; and the clock is virtual. Two runs of the
   same scenario in the same process therefore produce byte-identical
   traces — which is what makes a fuzzed counterexample replayable
   from one integer. *)

(* --- scenarios --------------------------------------------------------- *)

type component = C_fea | C_rib | C_bgp | C_rip | C_ospf

type source = S_bgp | S_rip | S_ospf

type op =
  | Kill of component
  | Restart of component
  | Flap of source
  | Inject of int
  | Surge of int
  | Sever
  | Delay_burst of float
  | Check
  (* Topology-scenario ops: these address routers and links of the
     scenario's topology by name; in the fixed three-peer world they
     are ignored. *)
  | Kill_in of string * component
  | Restart_in of string * component
  | Link_sever of string * string
  | Link_heal of string * string
  | Link_flap of string * string

type event = { at : float; op : op }

type chaos_levels = { dup : float; delay : float; jitter : float }

type scenario = {
  seed : int;
  background : chaos_levels;
  xrl_latency : float;
  events : event list;
  horizon : float;
  topology : Topology.t option;
}

let calm = { dup = 0.; delay = 0.; jitter = 0. }

let kill_at at c = { at; op = Kill c }
let restart_at at c = { at; op = Restart c }
let flap_at at s = { at; op = Flap s }
let inject_routes at n = { at; op = Inject n }
let surge_at at n = { at; op = Surge n }
let partition at = { at; op = Sever }
let delay_burst_at at ~dur = { at; op = Delay_burst dur }
let check_at at = { at; op = Check }
let kill_in_at at r c = { at; op = Kill_in (r, c) }
let restart_in_at at r c = { at; op = Restart_in (r, c) }
let sever_link_at at a b = { at; op = Link_sever (a, b) }
let heal_link_at at a b = { at; op = Link_heal (a, b) }
let flap_link_at at a b = { at; op = Link_flap (a, b) }

let sort_events evs =
  List.stable_sort (fun a b -> compare a.at b.at) evs

let scenario ?(seed = 0) ?(background = calm) ?(xrl_latency = 0.)
    ?(horizon = 120.) ?topology events =
  { seed; background; xrl_latency; events = sort_events events; horizon;
    topology }

let component_name = function
  | C_fea -> "fea" | C_rib -> "rib" | C_bgp -> "bgp"
  | C_rip -> "rip" | C_ospf -> "ospf"

let component_of_name = function
  | "fea" -> Some C_fea | "rib" -> Some C_rib | "bgp" -> Some C_bgp
  | "rip" -> Some C_rip | "ospf" -> Some C_ospf | _ -> None

let source_name = function S_bgp -> "bgp" | S_rip -> "rip" | S_ospf -> "ospf"

let source_of_name = function
  | "bgp" -> Some S_bgp | "rip" -> Some S_rip | "ospf" -> Some S_ospf
  | _ -> None

let op_to_string = function
  | Kill c -> "kill " ^ component_name c
  | Restart c -> "restart " ^ component_name c
  | Flap s -> "flap " ^ source_name s
  | Inject n -> Printf.sprintf "inject %d" n
  | Surge n -> Printf.sprintf "surge %d" n
  | Sever -> "sever"
  | Delay_burst d -> Printf.sprintf "delay-burst %g" d
  | Check -> "check"
  | Kill_in (r, c) -> Printf.sprintf "kill %s %s" r (component_name c)
  | Restart_in (r, c) -> Printf.sprintf "restart %s %s" r (component_name c)
  | Link_sever (a, b) -> Printf.sprintf "sever %s %s" a b
  | Link_heal (a, b) -> Printf.sprintf "heal %s %s" a b
  | Link_flap (a, b) -> Printf.sprintf "flap %s %s" a b

let to_string sc =
  let b = Buffer.create 256 in
  Printf.bprintf b "seed %d\n" sc.seed;
  Printf.bprintf b "horizon %g\n" sc.horizon;
  Option.iter (fun t -> Buffer.add_string b (Topology.to_string t)) sc.topology;
  if sc.background.dup > 0. then Printf.bprintf b "dup %g\n" sc.background.dup;
  if sc.background.delay > 0. then
    Printf.bprintf b "delay %g\n" sc.background.delay;
  if sc.background.jitter > 0. then
    Printf.bprintf b "jitter %g\n" sc.background.jitter;
  if sc.xrl_latency > 0. then
    Printf.bprintf b "latency %g\n" sc.xrl_latency;
  List.iter
    (fun ev -> Printf.bprintf b "at %g %s\n" ev.at (op_to_string ev.op))
    sc.events;
  Buffer.contents b

let of_string text =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let sc =
    ref { seed = 0; background = calm; xrl_latency = 0.; events = [];
          horizon = 120.; topology = None }
  in
  let topo_lines = ref [] in
  let rec go = function
    | [] -> (
      let s = !sc in
      let s = { s with events = sort_events (List.rev s.events) } in
      match !topo_lines with
      | [] -> Ok s
      | lines -> (
        match Topology.of_string (String.concat "\n" (List.rev lines)) with
        | Ok t -> Ok { s with topology = Some t }
        | Error e -> Error e))
    | line :: rest -> (
      let words =
        String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
      in
      let float_arg s k =
        match float_of_string_opt s with
        | Some f -> k f
        | None -> err "bad number %S in %S" s line
      in
      match words with
      | ("router" | "link" | "topology") :: _ ->
        topo_lines := line :: !topo_lines;
        go rest
      | [ "seed"; v ] -> (
        match int_of_string_opt v with
        | Some i -> sc := { !sc with seed = i }; go rest
        | None -> err "bad seed %S" v)
      | [ "horizon"; v ] ->
        float_arg v (fun f -> sc := { !sc with horizon = f }; go rest)
      | [ "dup"; v ] ->
        float_arg v (fun f ->
            let s = !sc in
            sc := { s with background = { s.background with dup = f } };
            go rest)
      | [ "delay"; v ] ->
        float_arg v (fun f ->
            let s = !sc in
            sc := { s with background = { s.background with delay = f } };
            go rest)
      | [ "jitter"; v ] ->
        float_arg v (fun f ->
            let s = !sc in
            sc := { s with background = { s.background with jitter = f } };
            go rest)
      | [ "latency"; v ] ->
        float_arg v (fun f -> sc := { !sc with xrl_latency = f }; go rest)
      | "at" :: t :: opw -> (
        float_arg t (fun at ->
            let add op =
              let s = !sc in
              sc := { s with events = { at; op } :: s.events };
              go rest
            in
            match opw with
            | [ "kill"; c ] -> (
              match component_of_name c with
              | Some c -> add (Kill c)
              | None -> err "unknown component %S" c)
            | [ "restart"; c ] -> (
              match component_of_name c with
              | Some c -> add (Restart c)
              | None -> err "unknown component %S" c)
            | [ "kill"; r; c ] -> (
              match component_of_name c with
              | Some c -> add (Kill_in (r, c))
              | None -> err "unknown component %S" c)
            | [ "restart"; r; c ] -> (
              match component_of_name c with
              | Some c -> add (Restart_in (r, c))
              | None -> err "unknown component %S" c)
            | [ "flap"; s ] -> (
              match source_of_name s with
              | Some s -> add (Flap s)
              | None -> err "unknown source %S" s)
            | [ "flap"; a; b ] -> add (Link_flap (a, b))
            | [ "sever"; a; b ] -> add (Link_sever (a, b))
            | [ "heal"; a; b ] -> add (Link_heal (a, b))
            | [ "inject"; n ] -> (
              match int_of_string_opt n with
              | Some n -> add (Inject n)
              | None -> err "bad count %S" n)
            | [ "surge"; n ] -> (
              match int_of_string_opt n with
              | Some n -> add (Surge n)
              | None -> err "bad count %S" n)
            | [ "sever" ] -> add Sever
            | [ "delay-burst"; d ] -> (
              match float_of_string_opt d with
              | Some d -> add (Delay_burst d)
              | None -> err "bad duration %S" d)
            | [ "check" ] -> add Check
            | _ -> err "cannot parse op in %S" line))
      | _ -> err "cannot parse line %S" line)
  in
  go lines

(* --- seed streams ------------------------------------------------------ *)

(* Decorrelate the sub-streams of one master seed; splitmix behind
   Rng.create takes care of avalanche. *)
let substream seed salt = Rng.create ((seed * 0x1F123BB5) lxor salt)

(* --- the world --------------------------------------------------------- *)

let ip = Ipv4.of_string_exn
let net = Ipv4net.of_string_exn

(* The device under test owns 10.0.0.1 (eBGP toward the ISP at
   10.0.0.9), 10.0.1.1 (OSPF toward 10.0.1.2) and 10.0.2.1 (RIP toward
   10.0.2.2). Its XRL plane runs over simulated streams on 10.99.0.1. *)
let dut_ifaces =
  [ ("eth0", ip "10.0.0.1"); ("eth1", ip "10.0.1.1"); ("eth2", ip "10.0.2.1") ]

let connected_nets =
  [ (net "10.0.0.0/24", ip "10.0.0.1");
    (net "10.0.1.0/24", ip "10.0.1.1");
    (net "10.0.2.0/24", ip "10.0.2.1") ]

let isp_nets =
  Array.init 8 (fun i -> net (Printf.sprintf "128.%d.0.0/16" (16 + i)))

let legacy_nets =
  Array.init 4 (fun i -> net (Printf.sprintf "192.168.%d.0/24" i))

let stub_nets =
  Array.init 4 (fun i -> net (Printf.sprintf "172.%d.0.0/16" (20 + i)))

let isp_config =
  let nets =
    Array.to_list isp_nets
    |> List.map (fun n ->
           Printf.sprintf "        network %s { }" (Ipv4net.to_string n))
    |> String.concat "\n"
  in
  Printf.sprintf
    {|
interfaces {
    interface eth0 { address: 10.0.0.9 }
}
protocols {
    bgp {
        local-as: 65100
        bgp-id: 9.9.9.9
%s
        peer 10.0.0.1 { as: 65001 local-ip: 10.0.0.9 }
    }
}
|}
    nets

let neighbor_config =
  let stubs =
    Array.to_list stub_nets
    |> List.map (fun n ->
           Printf.sprintf "        stub %s { cost: 1 }" (Ipv4net.to_string n))
    |> String.concat "\n"
  in
  Printf.sprintf
    {|
interfaces {
    interface eth0 { address: 10.0.1.2 }
}
protocols {
    ospf {
        router-id: 2.2.2.2
        interface 10.0.1.2 {
            neighbor 10.0.1.1 { router-id: 1.1.1.1 }
        }
%s
    }
}
|}
    stubs

let legacy_config =
  let routes =
    Array.to_list legacy_nets
    |> List.map (fun n ->
           Printf.sprintf "        route %s { metric: 1 }" (Ipv4net.to_string n))
    |> String.concat "\n"
  in
  Printf.sprintf
    {|
interfaces {
    interface eth0 { address: 10.0.2.2 }
}
protocols {
    rip {
        interface 10.0.2.2 { neighbor: 10.0.2.1 }
%s
    }
}
|}
    routes

type opts = {
  fea_rebirth_replay : bool;
  dataplane_ttl_leak : bool;
  bgp_lane_unordered : bool;
  rib_resync : bool;
  domains : int;
  bgp_redump : bool;
  log_trace : bool;
}

let default_opts =
  { fea_rebirth_replay = true; dataplane_ttl_leak = false;
    bgp_lane_unordered = false; rib_resync = true; bgp_redump = true;
    domains = 1; log_trace = false }

(* The known-bad element class for [dataplane_ttl_leak]: decrements the
   TTL like DecTtl but forgets to kill expired packets, so a TTL that
   reaches zero leaks out of the router. The forwarding invariant must
   catch it. *)
let () =
  Dataplane.register_map_class "LeakDecTtl"
    ~check:(function [] -> Ok () | _ -> Error "takes no arguments")
    ~make:(fun ~args:_ ~n_out:_ pkt ->
      pkt.Packet.ttl <- pkt.Packet.ttl - 1;
      Dataplane.Emit 0)

(* [default_config] with DecTtl swapped for the leaky variant. *)
let leaky_dataplane_config ~ifaces =
  Dataplane.default_config ~ifaces
  |> String.split_on_char '\n'
  |> List.map (fun line ->
         if String.equal (String.trim line) "ttl :: DecTtl" then
           "ttl :: LeakDecTtl"
         else line)
  |> String.concat "\n"

type world = {
  loop : Eventloop.t;
  netsim : Netsim.t;
  finder : Finder.t;
  families : Pf.family list;
  chaos_cfg : Pf_chaos.config;
  background : chaos_levels;
  lat_max : float ref;
  killer : Xrl_router.t;
  mutable pool : Shard.t option;
  mutable fea : Fea.t option;
  mutable rib : Rib.t option;
  mutable bgp : Bgp_process.t option;
  mutable rip : Rip_process.t option;
  mutable ospf : Ospf_process.t option;
  isp : Rtrmgr.t;
  neighbor : Rtrmgr.t;
  legacy : Rtrmgr.t;
  feed_rng : Rng.t;
  injected : (Ipv4net.t, unit) Hashtbl.t;
  trace : Buffer.t;
  mutable violations : string list;
  mutable repaired : bool;
  opts : opts;
}

let tr w fmt =
  Printf.ksprintf
    (fun s ->
       let line = Printf.sprintf "%10.3f  %s" (Eventloop.now w.loop) s in
       Buffer.add_string w.trace line;
       Buffer.add_char w.trace '\n';
       if w.opts.log_trace then prerr_endline line)
    fmt

let violation w fmt =
  Printf.ksprintf
    (fun s ->
       w.violations <- w.violations @ [ s ];
       tr w "VIOLATION: %s" s)
    fmt

(* --- DUT component lifecycle ------------------------------------------- *)

let rec do_kill w comp =
  let down name = tr w "%s down" name in
  match comp with
  | C_fea ->
    Option.iter (fun c -> Fea.shutdown c; w.fea <- None; down "fea") w.fea
  | C_rib ->
    Option.iter (fun c -> Rib.shutdown c; w.rib <- None; down "rib") w.rib
  | C_bgp ->
    Option.iter
      (fun c -> Bgp_process.shutdown c; w.bgp <- None; down "bgp")
      w.bgp
  | C_rip ->
    Option.iter
      (fun c -> Rip_process.shutdown c; w.rip <- None; down "rip")
      w.rip
  | C_ospf ->
    Option.iter
      (fun c -> Ospf_process.shutdown c; w.ospf <- None; down "ospf")
      w.ospf

and arm_kill w comp router =
  Pf_kill.make_signalable router ~on_signal:(fun _signal ->
      (* Defer so the TERM reply does not travel through a router that
         is already shutting down. *)
      Eventloop.defer w.loop (fun () -> do_kill w comp))

and start_component w comp =
  match comp with
  | C_fea ->
    if w.fea = None then begin
      let dataplane =
        if w.opts.dataplane_ttl_leak then
          `Graph (leaky_dataplane_config ~ifaces:(List.map fst dut_ifaces))
        else `Default
      in
      let fea =
        Fea.create ~families:w.families ~interfaces:dut_ifaces
          ~netsim:w.netsim ~dataplane w.finder w.loop ()
      in
      arm_kill w C_fea (Fea.xrl_router fea);
      w.fea <- Some fea;
      tr w "fea up"
    end
  | C_rib ->
    if w.rib = None then begin
      let rib =
        Rib.create ~families:w.families
          ?shard_dispatch:(Option.map Shard.rib_dispatch w.pool)
          ~fea_rebirth_replay:w.opts.fea_rebirth_replay w.finder w.loop ()
      in
      Option.iter
        (fun p ->
           Shard.connect_rib p rib;
           (* On a rebirth the workers still hold winners whose values
              are unchanged by the protocols' resync replays — no delta
              would fire for them, so re-emit everything; the fresh
              register diffs against empty and picks them all up. At
              first boot the pool is empty and this is a no-op. *)
           Shard.replay p)
        w.pool;
      List.iter
        (fun (n, nh) ->
           ignore
             (Rib.add_route rib ~protocol:"connected" ~net:n ~nexthop:nh ()))
        connected_nets;
      arm_kill w C_rib (Rib.xrl_router rib);
      w.rib <- Some rib;
      tr w "rib up"
    end
  | C_bgp ->
    if w.bgp = None then begin
      (* Tiny inbound slices (the real defaults are sized for 146k-route
         loads) so even the harness's small surges exercise the staged
         inbound path and both priority lanes; [lane_ordered:false] is
         the injected lane-reorder bug the fuzzer must catch. *)
      let bgp =
        Bgp_process.create ~families:w.families ~inbound_slice:4
          ~urgent_threshold:4 ~lane_ordered:(not w.opts.bgp_lane_unordered)
          ?shard_dispatch:(Option.map Shard.bgp_dispatch w.pool)
          ~rib_rebirth_resync:w.opts.rib_resync
          ~redump_on_reestablish:w.opts.bgp_redump w.finder w.loop
          ~netsim:w.netsim ~local_as:65001 ~bgp_id:(ip "1.1.1.1") ()
      in
      (* connect_bgp also resets the workers' decision-stage state: a
         reborn BGP rebuilds it from the peers' session dumps, exactly
         as its in-process tables are rebuilt. *)
      Option.iter (fun p -> Shard.connect_bgp p bgp) w.pool;
      Bgp_process.add_peer bgp
        { (Bgp_process.default_peer_config ~peer_addr:(ip "10.0.0.9")
             ~local_addr:(ip "10.0.0.1") ~peer_as:65100)
          with Bgp_process.deletion_slice = 20 };
      arm_kill w C_bgp (Bgp_process.xrl_router bgp);
      Bgp_process.start bgp;
      w.bgp <- Some bgp;
      tr w "bgp up"
    end
  | C_rip ->
    if w.rip = None then begin
      let cfg =
        Rip_process.default_config
          ~ifaces:
            [ { Rip_process.if_addr = ip "10.0.2.1";
                if_neighbors = [ ip "10.0.2.2" ] } ]
      in
      let rip =
        Rip_process.create ~families:w.families
          ~rib_rebirth_resync:w.opts.rib_resync w.finder w.loop cfg
      in
      arm_kill w C_rip (Rip_process.xrl_router rip);
      Rip_process.start rip;
      w.rip <- Some rip;
      tr w "rip up"
    end
  | C_ospf ->
    if w.ospf = None then begin
      let cfg =
        Ospf_process.default_config ~router_id:(ip "1.1.1.1")
          ~ifaces:
            [ { Ospf_process.o_addr = ip "10.0.1.1";
                o_neighbors =
                  [ { Ospf_process.n_addr = ip "10.0.1.2";
                      n_id = ip "2.2.2.2"; n_cost = 1 } ] } ]
          ()
      in
      let ospf =
        Ospf_process.create ~families:w.families
          ~rib_rebirth_resync:w.opts.rib_resync w.finder w.loop cfg
      in
      arm_kill w C_ospf (Ospf_process.xrl_router ospf);
      Ospf_process.start ospf;
      w.ospf <- Some ospf;
      tr w "ospf up"
    end

(* --- world construction ------------------------------------------------ *)

let boot_peer ~loop ~netsim ~finder name config =
  match Rtrmgr.boot ~loop ~netsim ~finder ~config () with
  | Ok r -> r
  | Error problems ->
    failwith
      (Printf.sprintf "simtest: %s config rejected: %s" name
         (String.concat "; " problems))

let spawn (sc : scenario) (opts : opts) =
  (* A fresh world per run; global telemetry restarts from zero so any
     counter the trace or the invariants consult is per-run. *)
  Telemetry.reset ();
  let seed = sc.seed in
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let tb_rng = substream seed 0x7E13 in
  Eventloop.set_tie_break loop (Some (fun n -> Rng.int tb_rng n));
  let lat_rng = substream seed 0x1A7E in
  let lat_max = ref sc.xrl_latency in
  let latency () =
    if !lat_max <= 0. then 0. else Rng.float lat_rng *. !lat_max
  in
  let chaos_cfg =
    Pf_chaos.config ~dup_prob:sc.background.dup ~delay:sc.background.delay
      ~delay_jitter:sc.background.jitter ()
  in
  let chaos_rng = substream seed 0xC4A0 in
  let sim_fam = Pf_sim.family ~latency netsim ~local_addr:(ip "10.99.0.1") in
  let fam = Pf_chaos.wrap ~rng:chaos_rng ~seed ~config:chaos_cfg sim_fam in
  let families = [ fam; Pf_kill.family ] in
  let finder = Finder.create ~seed:(seed lxor 0x0F1) () in
  let killer =
    Xrl_router.create ~families:[ Pf_kill.family ] ~family_pref:[ "kill" ]
      finder loop ~class_name:"simctl" ()
  in
  let isp =
    boot_peer ~loop ~netsim
      ~finder:(Finder.create ~seed:(seed lxor 0x0F2) ())
      "isp" isp_config
  in
  let neighbor =
    boot_peer ~loop ~netsim
      ~finder:(Finder.create ~seed:(seed lxor 0x0F3) ())
      "neighbor" neighbor_config
  in
  let legacy =
    boot_peer ~loop ~netsim
      ~finder:(Finder.create ~seed:(seed lxor 0x0F4) ())
      "legacy" legacy_config
  in
  (* Multi-domain mode: the decision/arbitration shard pool spawns its
     worker domains before any component exists; the RIB and BGP are
     then created with its dispatchers. Virtual time stays on the main
     loop — workers only see message passing — so the scenario's event
     schedule is unchanged, but delta application order between shards
     depends on real domain scheduling: multi-domain runs keep the
     invariants, not the byte-identical trace. *)
  let pool =
    if opts.domains > 1 then Some (Shard.create ~shards:opts.domains loop ())
    else None
  in
  let w =
    { loop; netsim; finder; families; chaos_cfg; background = sc.background;
      lat_max; killer; pool; fea = None; rib = None; bgp = None; rip = None;
      ospf = None; isp; neighbor; legacy;
      feed_rng = substream seed 0xFEED; injected = Hashtbl.create 64;
      trace = Buffer.create 4096; violations = []; repaired = false; opts }
  in
  Option.iter
    (fun p -> tr w "shard pool up: %d worker domains" (Shard.shards p))
    w.pool;
  (* FEA first, then the RIB, then protocols — the same dependency
     order the Router Manager uses. *)
  List.iter (start_component w) [ C_fea; C_rib; C_bgp; C_rip; C_ospf ];
  w

(* --- event execution --------------------------------------------------- *)

let send_kill w comp =
  Pf_kill.send_signal w.killer ~target:(component_name comp) ~signal:"TERM"
    (fun err ->
       if not (Xrl_error.is_ok err) then
         tr w "kill %s signal failed: %s" (component_name comp)
           (Xrl_error.to_string err))

let alive w = function
  | C_fea -> w.fea <> None
  | C_rib -> w.rib <> None
  | C_bgp -> w.bgp <> None
  | C_rip -> w.rip <> None
  | C_ospf -> w.ospf <> None

let fresh_prefix w =
  let rec draw tries =
    if tries > 1000 then failwith "simtest: prefix space exhausted";
    let n =
      net
        (Printf.sprintf "130.%d.%d.0/24"
           (Rng.int w.feed_rng 256) (Rng.int w.feed_rng 256))
    in
    if Hashtbl.mem w.injected n then draw (tries + 1)
    else begin
      Hashtbl.replace w.injected n ();
      n
    end
  in
  draw 0

let do_flap w s =
  let reappear delay f = ignore (Eventloop.after w.loop delay f) in
  match s with
  | S_bgp -> (
    match Rtrmgr.bgp w.isp with
    | None -> ()
    | Some bgp ->
      let n = isp_nets.(Rng.int w.feed_rng (Array.length isp_nets)) in
      tr w "flap bgp %s" (Ipv4net.to_string n);
      Bgp_process.withdraw bgp n;
      reappear 2.0 (fun () -> Bgp_process.originate bgp n))
  | S_rip -> (
    match Rtrmgr.rip w.legacy with
    | None -> ()
    | Some rip ->
      let n = legacy_nets.(Rng.int w.feed_rng (Array.length legacy_nets)) in
      tr w "flap rip %s" (Ipv4net.to_string n);
      Rip_process.retract rip n;
      reappear 2.0 (fun () -> Rip_process.inject rip ~net:n ()))
  | S_ospf -> (
    match Rtrmgr.ospf w.neighbor with
    | None -> ()
    | Some ospf ->
      let n = stub_nets.(Rng.int w.feed_rng (Array.length stub_nets)) in
      tr w "flap ospf %s" (Ipv4net.to_string n);
      Ospf_process.remove_stub ospf n;
      reappear 2.0 (fun () -> Ospf_process.add_stub ospf n 1))

let exec w op =
  match op with
  | Kill c ->
    tr w "event: kill %s" (component_name c);
    if alive w c then send_kill w c else tr w "kill %s: already down"
        (component_name c)
  | Restart c ->
    tr w "event: restart %s" (component_name c);
    start_component w c
  | Flap s -> do_flap w s
  | Inject n ->
    tr w "event: inject %d" n;
    (match Rtrmgr.bgp w.isp with
     | None -> ()
     | Some bgp ->
       for _ = 1 to n do
         Bgp_process.originate bgp (fresh_prefix w)
       done)
  | Surge n ->
    tr w "event: surge %d" n;
    (match Rtrmgr.bgp w.isp with
     | None -> ()
     | Some bgp ->
       let nets = List.init n (fun _ -> fresh_prefix w) in
       List.iter (Bgp_process.originate bgp) nets;
       (* Two loop iterations later — after the ISP's RibOut has
          flushed the surge UPDATE, but in the same virtual instant —
          withdraw the last surged prefix and originate three more.
          At the DUT the surge is staged; the chaser lands right
          behind it, so the last add drains with a 4-deep tail (bulk
          lane) while the withdrawal drains moments later from the
          nearly empty queue (urgent lane). The §5.1.2 per-prefix
          guard is what keeps that urgent withdrawal behind the very
          bulk add it must not overtake. *)
       match List.rev nets with
       | last :: _ ->
         Eventloop.defer w.loop (fun () ->
             Eventloop.defer w.loop (fun () ->
                 match Rtrmgr.bgp w.isp with
                 | Some bgp ->
                   tr w "surge chaser: withdraw %s +3"
                     (Ipv4net.to_string last);
                   Bgp_process.withdraw bgp last;
                   for _ = 1 to 3 do
                     Bgp_process.originate bgp (fresh_prefix w)
                   done
                 | None -> ()))
       | [] -> ())
  | Sever -> (
    tr w "event: sever";
    match w.bgp with
    | Some bgp ->
      if not (Bgp_process.sever_session bgp (ip "10.0.0.9")) then
        tr w "sever: no live session"
    | None -> tr w "sever: bgp is down")
  | Delay_burst dur ->
    tr w "event: delay burst %gs" dur;
    w.chaos_cfg.Pf_chaos.delay <- 0.05;
    w.chaos_cfg.Pf_chaos.delay_jitter <- 0.05;
    ignore
      (Eventloop.after w.loop dur (fun () ->
           if w.repaired then begin
             w.chaos_cfg.Pf_chaos.delay <- 0.;
             w.chaos_cfg.Pf_chaos.delay_jitter <- 0.
           end
           else begin
             w.chaos_cfg.Pf_chaos.delay <- w.background.delay;
             w.chaos_cfg.Pf_chaos.delay_jitter <- w.background.jitter
           end;
           tr w "delay burst over"))
  | Check -> () (* handled by the runner at its own pace *)
  | Kill_in (r, _) | Restart_in (r, _) ->
    tr w "event: topology op for %s ignored (fixed world)" r
  | Link_sever (a, b) | Link_heal (a, b) | Link_flap (a, b) ->
    tr w "event: link op %s-%s ignored (fixed world)" a b

(* --- convergence ------------------------------------------------------- *)

let pending_by_component w =
  let p r = Xrl_router.pending_sends r in
  let opt f = function Some c -> p (f c) | None -> 0 in
  [ ("simctl", p w.killer);
    ("fea", opt Fea.xrl_router w.fea);
    ("rib", opt Rib.xrl_router w.rib);
    ("bgp", opt Bgp_process.xrl_router w.bgp);
    ("rip", opt Rip_process.xrl_router w.rip);
    ("ospf", opt Ospf_process.xrl_router w.ospf) ]

let pending w =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (pending_by_component w)

let signature w =
  let rib_n = match w.rib with Some r -> Rib.route_count r | None -> -1 in
  let fib_n =
    match w.fea with Some f -> Fib.size (Fea.fib f) | None -> -1
  in
  let bgp_n, est =
    match w.bgp with
    | Some b -> (Bgp_process.route_count b, Bgp_process.established_count b)
    | None -> (-1, -1)
  in
  let rip_n = match w.rip with Some r -> Rip_process.route_count r | None -> -1 in
  let ospf_n =
    match w.ospf with
    | Some o -> List.length (Ospf_process.route_table o)
    | None -> -1
  in
  let origin p =
    match w.rib with Some r -> Rib.origin_route_count r p | None -> -1
  in
  Printf.sprintf "%d %d %d %d %d %d %d %d %d %d %d %d" rib_n fib_n bgp_n est
    rip_n ospf_n (origin "ebgp") (origin "rip") (origin "ospf")
    (Rib.route_count (Rtrmgr.rib w.isp))
    (Rib.route_count (Rtrmgr.rib w.neighbor))
    (Rib.route_count (Rtrmgr.rib w.legacy))

(* Quiescence here means: the per-component counts have been stable
   across a window longer than any periodic refresh (RIP's jittered
   interval is the worst at ~35 s) and no XRL is unsettled. Bounded,
   because a diverged world may still be churning.

   The step is deliberately not a multiple of the protocols' timer
   grid: OSPF hellos fire at exact multiples of 5 s, and
   [run_until_time] dispatches timers due exactly at its target before
   stopping — sampling at aligned instants would always catch a
   freshly transmitted hello as an unsettled send. *)
let converge w =
  let step = 9.7 in
  let needed = 5 in
  let max_steps = 90 in
  let rec go n stable last =
    Eventloop.run_until_time w.loop (Eventloop.now w.loop +. step);
    (* Sharded mode: the signature reads the merged mirrors, so wait
       for in-flight shard work to land before sampling. *)
    Option.iter
      (fun p -> Shard.quiesce p; Eventloop.run_until_idle w.loop)
      w.pool;
    let s = signature w in
    let stable = if s = last && pending w = 0 then stable + 1 else 0 in
    if stable >= needed then true
    else if n >= max_steps then begin
      violation w "no convergence after %.0f s (signature %s)"
        (float_of_int max_steps *. step) s;
      false
    end
    else go (n + 1) stable s
  in
  go 0 0 ""

(* --- invariants -------------------------------------------------------- *)

(* Forwarding-plane invariant: at a quiescent point, the element graph
   must agree with [Fib.lookup] packet for packet. Probes are injected
   through the real ingress path and intercepted at ToNetsim with an
   absorbing tx hook, so they never reach the shared netsim and cannot
   disturb the protocol sessions. The scheduler chain drains on
   deferred events, so [run_until_idle] is enough to flush each probe
   without advancing the clock. *)
let check_dataplane w ~tag fea dp =
  let fail fmt =
    Printf.ksprintf (fun s -> violation w "%s: dataplane: %s" tag s) fmt
  in
  let fib = Fea.fib fea in
  let exits = ref [] in
  Dataplane.set_tx_hook dp
    (Some
       (fun pkt ->
         exits :=
           (pkt.Packet.out_ifname, pkt.Packet.nexthop, pkt.Packet.ttl)
           :: !exits;
         `Absorb));
  let probe ?(ttl = 64) dst =
    exits := [];
    (match
       Dataplane.inject dp ~ifname:"eth0"
         (Packet.make ~ttl ~src:(ip "10.0.0.7") ~dst ())
     with
     | Ok () -> ()
     | Error e -> fail "probe inject failed: %s" e);
    Eventloop.run_until_idle w.loop;
    !exits
  in
  let probeable (e : Fib.entry) =
    let dst = Ipv4net.first_addr e.Fib.net in
    if Ipv4.equal dst Ipv4.zero || Ipv4.is_multicast dst then None
    else Some dst
  in
  let entries = Fib.entries fib in
  (* One probe per FIB entry would dominate the run on big tables;
     a bounded deterministic sample catches the same bug classes. *)
  let sample = List.filteri (fun i _ -> i < 16) entries in
  List.iter
    (fun (e : Fib.entry) ->
      match probeable e with
      | None -> ()
      | Some dst -> (
        match Fib.lookup fib dst with
        | None -> fail "%s is in the FIB but lookup misses it"
                    (Ipv4net.to_string e.Fib.net)
        | Some hit -> (
          match probe dst with
          | [ (ifname, nexthop, ttl) ] ->
            let expect_nh =
              if
                String.equal hit.Fib.protocol "connected"
                || Ipv4.equal hit.Fib.nexthop Ipv4.zero
              then dst
              else hit.Fib.nexthop
            in
            if not (Ipv4.equal nexthop expect_nh) then
              fail "probe %s exited toward %s, FIB says %s"
                (Ipv4.to_string dst) (Ipv4.to_string nexthop)
                (Ipv4.to_string expect_nh);
            if hit.Fib.ifname <> "" && not (String.equal ifname hit.Fib.ifname)
            then
              fail "probe %s exited on %S, FIB says %S" (Ipv4.to_string dst)
                ifname hit.Fib.ifname;
            if ttl <> 63 then
              fail "probe %s exited with TTL %d (expected 63)"
                (Ipv4.to_string dst) ttl
          | [] ->
            fail "probe %s never exited, but the FIB routes it via %s"
              (Ipv4.to_string dst)
              (Ipv4.to_string hit.Fib.nexthop)
          | l ->
            fail "probe %s exited %d times" (Ipv4.to_string dst)
              (List.length l))))
    sample;
  (* A destination with no route must be dropped, not forwarded. *)
  let dark = ip "203.0.113.77" in
  (match Fib.lookup fib dark with
   | Some _ -> ()
   | None ->
     if probe dark <> [] then
       fail "probe %s exited despite having no route" (Ipv4.to_string dark));
  (* TTL death: an expiring packet must be dropped inside the graph and
     the drop must be visible in the element counters. *)
  (match List.find_map probeable entries with
   | None -> ()
   | Some dst ->
     let ttl_drops () =
       List.fold_left
         (fun acc s ->
           acc
           + (match List.assoc_opt "ttl-expired" s.Dataplane.st_drops with
              | Some n -> n
              | None -> 0))
         0 (Dataplane.stats dp)
     in
     let before = ttl_drops () in
     (match probe ~ttl:1 dst with
      | [] ->
        if ttl_drops () <> before + 1 then
          fail "TTL-expired probe for %s dropped but not counted"
            (Ipv4.to_string dst)
      | _ ->
        fail "TTL-expired probe for %s exited the router"
          (Ipv4.to_string dst)));
  Dataplane.set_tx_hook dp None

let check_invariants w ~tag =
  let fail fmt = Printf.ksprintf (fun s -> violation w "%s: %s" tag s) fmt in
  (* 0. Sharded mode: at a quiescent point the pool must be drained,
        and replaying every shard's current winners through the delta
        path must change nothing — i.e. the union of the per-shard
        slices is exactly the merged state the single-domain checks
        below then inspect (docs/CONCURRENCY.md). *)
  (match w.pool with
   | None -> ()
   | Some pool ->
     Shard.quiesce pool;
     Eventloop.run_until_idle w.loop;
     let bl = Shard.backlog pool in
     if bl <> 0 then fail "shard pool: %d operations in flight after quiesce" bl;
     let rib_before = Option.map Rib.route_count w.rib in
     let bgp_before = Option.map Bgp_process.route_count w.bgp in
     Shard.replay pool;
     Shard.quiesce pool;
     Eventloop.run_until_idle w.loop;
     let unchanged name before now =
       match (before, now) with
       | Some b, Some n when b <> n ->
         fail "shard replay changed %s winner count: %d -> %d" name b n
       | _ -> ()
     in
     unchanged "RIB" rib_before (Option.map Rib.route_count w.rib);
     unchanged "BGP" bgp_before (Option.map Bgp_process.route_count w.bgp));
  (* 1. Every RIB winner is installed in the FIB with the same nexthop,
        and nothing else is. *)
  (match (w.rib, w.fea) with
   | Some rib, Some fea ->
     let fib = Fea.fib fea in
     let missing =
       Rib.fold_winners rib
         (fun r acc ->
            match Fib.get fib r.Rib_route.net with
            | Some e when Ipv4.equal e.Fib.nexthop r.Rib_route.nexthop -> acc
            | Some e ->
              fail "FIB nexthop for %s is %s, RIB says %s"
                (Ipv4net.to_string r.Rib_route.net)
                (Ipv4.to_string e.Fib.nexthop)
                (Ipv4.to_string r.Rib_route.nexthop);
              acc
            | None -> r.Rib_route.net :: acc)
         []
     in
     List.iter
       (fun n -> fail "RIB winner %s missing from FIB" (Ipv4net.to_string n))
       missing;
     let rib_n = Rib.route_count rib and fib_n = Fib.size fib in
     if rib_n <> fib_n then
       fail "RIB has %d winners but FIB has %d entries" rib_n fib_n;
     (* The reverse direction, named: a FIB entry with no RIB winner is
        a stale survivor — the signature of a route withdrawn while the
        RIB was down that nobody swept after its restart. *)
     let winners = Hashtbl.create 64 in
     Rib.fold_winners rib
       (fun r () -> Hashtbl.replace winners r.Rib_route.net ())
       ();
     List.iter
       (fun (e : Fib.entry) ->
          if not (Hashtbl.mem winners e.Fib.net) then
            fail "FIB entry %s (%s) has no RIB winner — stale survivor"
              (Ipv4net.to_string e.Fib.net)
              e.Fib.protocol)
       (Fib.entries fib);
     (* 2. No forwarding loops: following nexthops through the FIB must
           reach a directly connected network within 32 hops. *)
     List.iter
       (fun (e : Fib.entry) ->
          let rec walk hop addr =
            if hop > 32 then
              fail "forwarding loop resolving %s (via %s)"
                (Ipv4net.to_string e.Fib.net)
                (Ipv4.to_string e.Fib.nexthop)
            else
              match Fib.lookup fib addr with
              | None ->
                fail "nexthop %s of %s is unroutable" (Ipv4.to_string addr)
                  (Ipv4net.to_string e.Fib.net)
              | Some hit ->
                if not (String.equal hit.Fib.protocol "connected") then
                  walk (hop + 1) hit.Fib.nexthop
          in
          if not (String.equal e.Fib.protocol "connected") then
            walk 0 e.Fib.nexthop)
       (Fib.entries fib)
   | _ -> ());
  (* 3. Per-protocol agreement between each component's own table and
        the RIB origin table it feeds. *)
  (match (w.rib, w.bgp) with
   | Some rib, Some bgp ->
     let b = Bgp_process.route_count bgp
     and o = Rib.origin_route_count rib "ebgp" in
     if b <> o then fail "BGP holds %d winners but RIB ebgp origin has %d" b o
   | _ -> ());
  (match (w.rib, w.rip) with
   | Some rib, Some rip ->
     let r = Rip_process.route_count rip
     and o = Rib.origin_route_count rib "rip" in
     if r <> o then fail "RIP holds %d routes but RIB rip origin has %d" r o
   | _ -> ());
  (match (w.rib, w.ospf) with
   | Some rib, Some ospf ->
     let s = List.length (Ospf_process.route_table ospf)
     and o = Rib.origin_route_count rib "ospf" in
     if s <> o then fail "OSPF holds %d routes but RIB ospf origin has %d" s o
   | _ -> ());
  (* 4. Nothing in flight: every XRL settled. *)
  let p = pending w in
  if p <> 0 then
    fail "%d XRL sends still unsettled (%s)" p
      (pending_by_component w
      |> List.filter (fun (_, n) -> n > 0)
      |> List.map (fun (c, n) -> Printf.sprintf "%s:%d" c n)
      |> String.concat " ");
  (* 5. Transport telemetry is consistent: the sim family cannot
        dispatch more requests than were transmitted. *)
  let tx = Telemetry.counter_value (Telemetry.counter "xrl.sim.requests_tx")
  and rx = Telemetry.counter_value (Telemetry.counter "xrl.sim.requests_rx") in
  if rx > tx then fail "sim transport dispatched %d requests but sent %d" rx tx;
  (* 6. The element-graph forwarding path agrees with the FIB. *)
  (match w.fea with
   | Some fea ->
     Option.iter (fun dp -> check_dataplane w ~tag fea dp) (Fea.dataplane fea)
   | None -> ());
  tr w "%s: invariants checked (%s)" tag (signature w)

(* --- repair and teardown ----------------------------------------------- *)

let repair w =
  w.repaired <- true;
  w.chaos_cfg.Pf_chaos.dup_prob <- 0.;
  w.chaos_cfg.Pf_chaos.delay <- 0.;
  w.chaos_cfg.Pf_chaos.delay_jitter <- 0.;
  w.lat_max := 0.;
  List.iter
    (fun c -> if not (alive w c) then start_component w c)
    [ C_fea; C_rib; C_bgp; C_rip; C_ospf ];
  tr w "repaired: chaos off, all components up"

let teardown w =
  tr w "teardown";
  (* The pool goes first, while its delta appliers are still alive:
     shutdown joins the worker domains and flushes the outbox. *)
  Option.iter Shard.shutdown w.pool;
  w.pool <- None;
  List.iter (do_kill w) [ C_bgp; C_rip; C_ospf; C_rib; C_fea ];
  Xrl_router.shutdown w.killer;
  Rtrmgr.shutdown w.isp;
  Rtrmgr.shutdown w.neighbor;
  Rtrmgr.shutdown w.legacy;
  Eventloop.set_tie_break w.loop None;
  (* Drain: everything already scheduled must either fire and not
     re-arm, or have been cancelled by the shutdowns above. RIP's
     jittered update timer is the slowest straggler (~35 s). *)
  let bail = Eventloop.now w.loop +. 900. in
  let rec drain () =
    if
      (Eventloop.live_timers w.loop > 0 || Eventloop.live_tasks w.loop > 0)
      && Eventloop.now w.loop < bail
    then begin
      Eventloop.run_until_time w.loop (Eventloop.now w.loop +. 60.);
      drain ()
    end
  in
  drain ();
  let timers = Eventloop.live_timers w.loop in
  if timers <> 0 then
    violation w "teardown: %d timers leaked after shutdown" timers;
  let tasks = Eventloop.live_tasks w.loop in
  if tasks <> 0 then
    violation w "teardown: %d background tasks leaked after shutdown" tasks;
  let p = Xrl_router.pending_sends w.killer in
  if p <> 0 then violation w "teardown: %d sends unsettled after shutdown" p

(* --- runner ------------------------------------------------------------ *)

type outcome = {
  ran : scenario;
  violations : string list;
  trace : string;
  sim_time : float;
  dispatched : int;
}

(* --- the topology world ------------------------------------------------ *)

let rtrmgr_component = function
  | C_fea -> `Fea | C_rib -> `Rib | C_bgp -> `Bgp
  | C_rip -> `Rip | C_ospf -> `Ospf

(* Map scenario ops onto the multi-router world. One-argument
   kill/restart address the first router; the fixed-world feed ops
   (flap-source, inject, surge, sever-session) have no topology
   meaning and are dropped. *)
let revent_of_op ~first = function
  | Kill_in (r, c) -> Some (Simnet.E_kill (r, rtrmgr_component c))
  | Restart_in (r, c) -> Some (Simnet.E_restart (r, rtrmgr_component c))
  | Link_sever (a, b) -> Some (Simnet.E_sever (a, b))
  | Link_heal (a, b) -> Some (Simnet.E_heal (a, b))
  | Link_flap (a, b) -> Some (Simnet.E_flap (a, b))
  | Kill c -> Some (Simnet.E_kill (first, rtrmgr_component c))
  | Restart c -> Some (Simnet.E_restart (first, rtrmgr_component c))
  | Delay_burst d -> Some (Simnet.E_delay_burst d)
  | Flap _ | Inject _ | Surge _ | Sever | Check -> None

let run_topo ~(opts : opts) (sc : scenario) topo =
  let params =
    { Simnet.seed = sc.seed; dup = sc.background.dup;
      delay = sc.background.delay; jitter = sc.background.jitter;
      xrl_latency = sc.xrl_latency; bgp_redump = opts.bgp_redump;
      log_trace = opts.log_trace }
  in
  let first =
    match topo.Topology.nodes with
    | n :: _ -> n.Topology.name
    | [] -> ""
  in
  let events =
    List.filter_map
      (fun ev ->
         Option.map (fun e -> (ev.at, e)) (revent_of_op ~first ev.op))
      sc.events
  in
  let checkpoints =
    List.filter_map
      (fun ev -> match ev.op with Check -> Some ev.at | _ -> None)
      sc.events
  in
  let o = Simnet.run params topo ~events ~checkpoints ~horizon:sc.horizon in
  { ran = sc; violations = o.Simnet.o_violations; trace = o.Simnet.o_trace;
    sim_time = o.Simnet.o_sim_time; dispatched = o.Simnet.o_dispatched }

let rec run ?(opts = default_opts) (sc : scenario) =
  match sc.topology with
  | Some topo -> run_topo ~opts sc topo
  | None -> run_fixed ~opts sc

and run_fixed ~opts (sc : scenario) =
  let w = spawn sc opts in
  tr w "scenario seed %d: %d events, horizon %g" sc.seed
    (List.length sc.events) sc.horizon;
  (* Schedule everything except checkpoints, which the runner drives so
     that convergence never nests inside an event callback. *)
  List.iter
    (fun ev ->
       match ev.op with
       | Check -> ()
       | op -> ignore (Eventloop.at w.loop ev.at (fun () -> exec w op)))
    sc.events;
  let checkpoints =
    List.filter_map
      (fun ev -> match ev.op with Check -> Some ev.at | _ -> None)
      sc.events
  in
  List.iter
    (fun at ->
       Eventloop.run_until_time w.loop at;
       ignore (converge w);
       check_invariants w ~tag:(Printf.sprintf "check@%g" at))
    checkpoints;
  let last_event =
    List.fold_left (fun acc ev -> Float.max acc ev.at) 0. sc.events
  in
  Eventloop.run_until_time w.loop (Float.max sc.horizon (last_event +. 10.));
  repair w;
  ignore (converge w);
  check_invariants w ~tag:"final";
  teardown w;
  { ran = sc; violations = w.violations; trace = Buffer.contents w.trace;
    sim_time = Eventloop.now w.loop;
    dispatched = Eventloop.events_dispatched w.loop }

(* --- fuzzing ----------------------------------------------------------- *)

let generate ~seed =
  let g = Rng.create ((seed * 0x9E3779B1) lxor 0x5EEDF00D) in
  let pickf arr = arr.(Rng.int g (Array.length arr)) in
  let background =
    { dup = pickf [| 0.; 0.; 0.05; 0.1 |];
      delay = 0.;
      jitter = pickf [| 0.; 0.; 0.005; 0.02 |] }
  in
  let xrl_latency = pickf [| 0.; 0.; 0.002; 0.01 |] in
  (* Every component is fair game, the RIB included: protocols replay
     their tables into a reborn RIB and the FEA sweeps unconfirmed
     entries, so a RIB kill must converge like any other. *)
  let comps = [| C_fea; C_rib; C_bgp; C_rip; C_ospf |] in
  let sources = [| S_bgp; S_rip; S_ospf |] in
  let n = Rng.int g 5 in
  let evs = ref [] in
  for _ = 1 to n do
    let at = 20. +. (Rng.float g *. 65.) in
    match Rng.int g 10 with
    | 0 | 1 | 2 | 3 ->
      let c = comps.(Rng.int g (Array.length comps)) in
      evs := kill_at at c :: !evs;
      if Rng.bool g then
        evs := restart_at (at +. 5. +. (Rng.float g *. 20.)) c :: !evs
    | 4 | 5 -> evs := flap_at at sources.(Rng.int g (Array.length sources)) :: !evs
    | 6 -> evs := inject_routes at (1 + Rng.int g 15) :: !evs
    | 7 -> evs := surge_at at (5 + Rng.int g 15) :: !evs
    | 8 -> evs := partition at :: !evs
    | _ -> evs := delay_burst_at at ~dur:(2. +. (Rng.float g *. 8.)) :: !evs
  done;
  scenario ~seed ~background ~xrl_latency ~horizon:120. !evs

let generate_topo ~seed =
  let g = Rng.create ((seed * 0x9E3779B1) lxor 0x70FF5EED) in
  let pickf arr = arr.(Rng.int g (Array.length arr)) in
  let topo = Topology.generate ~seed in
  let names =
    Array.of_list (List.map (fun n -> n.Topology.name) topo.Topology.nodes)
  in
  let links = Array.of_list topo.Topology.links in
  let background =
    { dup = pickf [| 0.; 0.; 0.05; 0.1 |];
      delay = 0.;
      jitter = pickf [| 0.; 0.; 0.005; 0.02 |] }
  in
  let xrl_latency = pickf [| 0.; 0.; 0.002; 0.01 |] in
  let comps = [| C_fea; C_rib; C_bgp; C_rip; C_ospf |] in
  let n = 1 + Rng.int g 4 in
  let evs = ref [] in
  for _ = 1 to n do
    let at = 20. +. (Rng.float g *. 60.) in
    match Rng.int g 10 with
    | 0 | 1 | 2 ->
      let r = names.(Rng.int g (Array.length names)) in
      let c = comps.(Rng.int g (Array.length comps)) in
      evs := kill_in_at at r c :: !evs;
      if Rng.bool g then
        evs := restart_in_at (at +. 5. +. (Rng.float g *. 20.)) r c :: !evs
    | (3 | 4 | 5) when Array.length links > 0 ->
      let a, b = links.(Rng.int g (Array.length links)) in
      evs := flap_link_at at a b :: !evs
    | (6 | 7 | 8) when Array.length links > 0 ->
      let a, b = links.(Rng.int g (Array.length links)) in
      evs := sever_link_at at a b :: !evs;
      if Rng.bool g then
        evs := heal_link_at (at +. 5. +. (Rng.float g *. 20.)) a b :: !evs
    | _ -> evs := delay_burst_at at ~dur:(2. +. (Rng.float g *. 8.)) :: !evs
  done;
  scenario ~seed ~background ~xrl_latency ~horizon:120. ~topology:topo !evs

let shrink ?(opts = default_opts) sc0 =
  let runs = ref 0 in
  let still_fails sc =
    incr runs;
    (run ~opts sc).violations <> []
  in
  let budget = 100 in
  (* Greedily drop events to a fixpoint: after a successful removal,
     retry from the same index (the list shifted under it). *)
  let rec drop_events sc i =
    if !runs >= budget || i >= List.length sc.events then sc
    else
      let cand =
        { sc with events = List.filteri (fun j _ -> j <> i) sc.events }
      in
      if still_fails cand then drop_events cand i else drop_events sc (i + 1)
  in
  let sc = drop_events sc0 0 in
  (* Shrink the topology itself: drop routers, then links. Events left
     naming a removed piece are traced no-ops at run time, and a final
     drop_events pass sweeps them out. *)
  let rec drop_nodes sc i =
    match sc.topology with
    | None -> sc
    | Some topo ->
      if !runs >= budget || i >= List.length topo.Topology.nodes then sc
      else
        let name = (List.nth topo.Topology.nodes i).Topology.name in
        let t' = Topology.drop_node topo name in
        if Topology.size t' = 0 then drop_nodes sc (i + 1)
        else
          let cand = { sc with topology = Some t' } in
          if still_fails cand then drop_nodes cand i
          else drop_nodes sc (i + 1)
  in
  let sc = drop_nodes sc 0 in
  let rec drop_links sc i =
    match sc.topology with
    | None -> sc
    | Some topo ->
      if !runs >= budget || i >= List.length topo.Topology.links then sc
      else
        let l = List.nth topo.Topology.links i in
        let cand = { sc with topology = Some (Topology.drop_link topo l) } in
        if still_fails cand then drop_links cand i else drop_links sc (i + 1)
  in
  let sc = drop_links sc 0 in
  let sc = if sc.topology <> None then drop_events sc 0 else sc in
  (* Then zero the ambient-chaos knobs one at a time. *)
  let try_calm sc cand = if !runs < budget && still_fails cand then cand else sc in
  let sc =
    if sc.background <> calm then try_calm sc { sc with background = calm }
    else sc
  in
  let sc =
    if sc.xrl_latency > 0. then try_calm sc { sc with xrl_latency = 0. }
    else sc
  in
  (sc, !runs)

type fuzz_result = {
  seeds_run : int;
  failed : (outcome * scenario) option;
  shrink_runs : int;
}

let fuzz ?(opts = default_opts) ?(progress = fun _ -> ()) ?(topo = false)
    ~base ~count () =
  let gen = if topo then generate_topo else generate in
  let rec go i =
    if i >= count then { seeds_run = count; failed = None; shrink_runs = 0 }
    else begin
      let seed = base + i in
      progress seed;
      let sc = gen ~seed in
      let o = run ~opts sc in
      if o.violations = [] then go (i + 1)
      else begin
        let minimal, shrink_runs = shrink ~opts sc in
        { seeds_run = i + 1; failed = Some (o, minimal); shrink_runs }
      end
    end
  in
  go 0
