(* Topology-parametric simulation world (see simnet.mli).

   Boots one full router stack per topology node — each with its own
   Rtrmgr, Finder, XRL family and telemetry namespace — on one virtual
   clock and one shared Netsim, derives every address from the
   topology's node/link indices, and checks network-wide invariants:
   reachability, loop-free cross-router forwarding, per-router table
   agreement. Everything is a function of the master seed, exactly as
   in the single-router harness. *)

let src = Logs.Src.create "xorp.simnet" ~doc:"multi-router simulation"

module Log = (val Logs.src_log src : Logs.LOG)

type params = {
  seed : int;
  dup : float;
  delay : float;
  jitter : float;
  xrl_latency : float;
  bgp_redump : bool;
  log_trace : bool;
}

let default_params =
  { seed = 0; dup = 0.; delay = 0.; jitter = 0.; xrl_latency = 0.;
    bgp_redump = true; log_trace = false }

type revent =
  | E_kill of string * Rtrmgr.component
  | E_restart of string * Rtrmgr.component
  | E_sever of string * string
  | E_heal of string * string
  | E_flap of string * string
  | E_delay_burst of float

let component_name = function
  | `Fea -> "fea" | `Rib -> "rib" | `Bgp -> "bgp"
  | `Rip -> "rip" | `Ospf -> "ospf"

let revent_to_string = function
  | E_kill (r, c) -> Printf.sprintf "kill %s %s" r (component_name c)
  | E_restart (r, c) -> Printf.sprintf "restart %s %s" r (component_name c)
  | E_sever (a, b) -> Printf.sprintf "sever %s %s" a b
  | E_heal (a, b) -> Printf.sprintf "heal %s %s" a b
  | E_flap (a, b) -> Printf.sprintf "flap %s %s" a b
  | E_delay_burst d -> Printf.sprintf "delay-burst %g" d

(* --- config generation ------------------------------------------------- *)

(* AS plan: every eBGP router gets its own AS; all iBGP routers share
   one. *)
let as_number topo name =
  match Topology.node topo name with
  | Some n when n.Topology.protos.Topology.bgp = Topology.B_ibgp -> 64512
  | _ -> 65001 + Option.value (Topology.node_index topo name) ~default:0

(* Incident links of [name], in canonical link order: (link index,
   own address, peer name, peer address). *)
let incident topo name =
  List.filteri (fun _ (a, b) -> a = name || b = name) topo.Topology.links
  |> List.map (fun ((a, b) as l) ->
         let li = Option.get (Topology.link_index topo l) in
         let a1, a2 = Topology.link_addrs li in
         if a = name then (li, a1, b, a2) else (li, a2, a, a1))

(* Which protocol (if any) originates the router's one prefix. *)
let origination (p : Topology.protos) =
  if p.Topology.bgp <> Topology.B_off then `Bgp
  else if p.Topology.rip then `Rip
  else if p.Topology.ospf then `Ospf
  else `None

let runs_bgp (p : Topology.protos) = p.Topology.bgp <> Topology.B_off

let peer_protos topo peer =
  match Topology.node topo peer with
  | Some n -> n.Topology.protos
  | None -> Topology.no_protos

(* Render the Rtrmgr configuration text of one node. Timers are tuned
   so that a silently severed link is detected well inside the
   convergence window: BGP holds for 30 s and redials every 4 s, RIP
   expires unrefreshed routes after 40 s. *)
let gen_config topo idx (node : Topology.node) =
  let b = Buffer.create 512 in
  let p = node.Topology.protos in
  let name = node.Topology.name in
  let links = incident topo name in
  let origin = Ipv4net.to_string (Topology.origin_prefix idx) in
  Buffer.add_string b "interfaces {\n";
  List.iteri
    (fun k (_, own, _, _) ->
      Printf.bprintf b "    interface eth%d { address: %s }\n" k
        (Ipv4.to_string own))
    links;
  Buffer.add_string b "}\nprotocols {\n";
  (* iBGP nexthops are the originators' router ids (their sim
     addresses), which no connected subnet covers; a static /32 per
     iBGP neighbour stands in for the IGP that would make them
     resolvable in a real deployment. *)
  let ibgp_statics =
    if p.Topology.bgp <> Topology.B_ibgp then []
    else
      List.filter_map
        (fun (_, _, peer, peer_addr) ->
          match Topology.node topo peer with
          | Some pn when pn.Topology.protos.Topology.bgp = Topology.B_ibgp ->
            let pidx = Option.get (Topology.node_index topo peer) in
            Some
              (Printf.sprintf "        route %s/32 { nexthop: %s }"
                 (Ipv4.to_string (Topology.sim_addr pidx))
                 (Ipv4.to_string peer_addr))
          | _ -> None)
        links
  in
  if ibgp_statics <> [] then begin
    Buffer.add_string b "    static {\n";
    List.iter (fun l -> Buffer.add_string b l; Buffer.add_char b '\n')
      ibgp_statics;
    Buffer.add_string b "    }\n"
  end;
  if runs_bgp p then begin
    Buffer.add_string b "    bgp {\n";
    Printf.bprintf b "        local-as: %d\n" (as_number topo name);
    Printf.bprintf b "        bgp-id: %s\n"
      (Ipv4.to_string (Topology.sim_addr idx));
    if origination p = `Bgp then
      Printf.bprintf b "        network %s { }\n" origin;
    List.iter
      (fun (_, own, peer, peer_addr) ->
        if runs_bgp (peer_protos topo peer) then
          Printf.bprintf b
            "        peer %s { as: %d local-ip: %s holdtime: 30 \
             connect-retry: 4 }\n"
            (Ipv4.to_string peer_addr) (as_number topo peer)
            (Ipv4.to_string own))
      links;
    Buffer.add_string b "    }\n"
  end;
  if p.Topology.rip then begin
    Buffer.add_string b "    rip {\n";
    Buffer.add_string b "        update-interval: 12\n";
    Buffer.add_string b "        timeout: 40\n";
    List.iter
      (fun (_, own, peer, peer_addr) ->
        if (peer_protos topo peer).Topology.rip then
          Printf.bprintf b "        interface %s { neighbor: %s }\n"
            (Ipv4.to_string own) (Ipv4.to_string peer_addr))
      links;
    if origination p = `Rip then
      Printf.bprintf b "        route %s { metric: 1 }\n" origin;
    Buffer.add_string b "    }\n"
  end;
  if p.Topology.ospf then begin
    Buffer.add_string b "    ospf {\n";
    Printf.bprintf b "        router-id: %s\n"
      (Ipv4.to_string (Topology.sim_addr idx));
    List.iter
      (fun (_, own, peer, peer_addr) ->
        if (peer_protos topo peer).Topology.ospf then begin
          let pidx = Option.get (Topology.node_index topo peer) in
          Printf.bprintf b "        interface %s {\n" (Ipv4.to_string own);
          Printf.bprintf b "            neighbor %s { router-id: %s }\n"
            (Ipv4.to_string peer_addr)
            (Ipv4.to_string (Topology.sim_addr pidx));
          Buffer.add_string b "        }\n"
        end)
      links;
    if origination p = `Ospf then
      Printf.bprintf b "        stub %s { cost: 1 }\n" origin;
    Buffer.add_string b "    }\n"
  end;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* --- the world --------------------------------------------------------- *)

type router = {
  r_name : string;
  r_idx : int;
  r_protos : Topology.protos;
  r_mgr : Rtrmgr.t;
}

type t = {
  topo : Topology.t;
  loop : Eventloop.t;
  netsim : Netsim.t;
  routers : router array;
  by_name : (string, int) Hashtbl.t;
  (* interface address (as int) -> (owning router index, link). *)
  addr_owner : (int, int * Topology.link) Hashtbl.t;
  cuts : (Topology.link, unit) Hashtbl.t;
  chaos_cfg : Pf_chaos.config;
  background : float * float * float; (* dup, delay, jitter *)
  lat_max : float ref;
  params : params;
  trace : Buffer.t;
  mutable violations : string list;
  mutable repaired : bool;
}

let substream seed salt = Rng.create ((seed * 0x1F123BB5) lxor salt)

let tr w fmt =
  Printf.ksprintf
    (fun s ->
      let line = Printf.sprintf "%10.3f  %s" (Eventloop.now w.loop) s in
      Buffer.add_string w.trace line;
      Buffer.add_char w.trace '\n';
      if w.params.log_trace then prerr_endline line)
    fmt

let violation w fmt =
  Printf.ksprintf
    (fun s ->
      w.violations <- w.violations @ [ s ];
      tr w "VIOLATION: %s" s)
    fmt

let spawn (p : params) topo =
  Telemetry.reset ();
  let loop = Eventloop.create () in
  let netsim = Netsim.create loop in
  let tb_rng = substream p.seed 0x7E13 in
  Eventloop.set_tie_break loop (Some (fun n -> Rng.int tb_rng n));
  let lat_rng = substream p.seed 0x1A7E in
  let lat_max = ref p.xrl_latency in
  let latency () =
    if !lat_max <= 0. then 0. else Rng.float lat_rng *. !lat_max
  in
  let chaos_cfg =
    Pf_chaos.config ~dup_prob:p.dup ~delay:p.delay ~delay_jitter:p.jitter ()
  in
  let routers =
    Array.of_list
      (List.mapi
         (fun idx (node : Topology.node) ->
           let name = node.Topology.name in
           (* Per-router namespace: every metric a component registers
              while booting lands under "<name>.". *)
           Telemetry.with_namespace (name ^ ".") (fun () ->
               let sim_fam =
                 Pf_sim.family ~latency netsim
                   ~local_addr:(Topology.sim_addr idx)
               in
               let fam =
                 Pf_chaos.wrap
                   ~rng:(substream p.seed (0xC4A0 lxor (idx * 0x01000193)))
                   ~seed:(p.seed + idx) ~config:chaos_cfg sim_fam
               in
               let finder = Finder.create ~seed:(p.seed lxor (0x3D0 + idx)) () in
               match
                 Rtrmgr.boot ~loop ~netsim ~finder ~families:[ fam ]
                   ~bgp_redump:p.bgp_redump
                   ~config:(gen_config topo idx node) ()
               with
               | Ok mgr ->
                 { r_name = name; r_idx = idx; r_protos = node.Topology.protos;
                   r_mgr = mgr }
               | Error problems ->
                 failwith
                   (Printf.sprintf "simnet: %s config rejected: %s" name
                      (String.concat "; " problems))))
         topo.Topology.nodes)
  in
  let by_name = Hashtbl.create 16 in
  Array.iter (fun r -> Hashtbl.replace by_name r.r_name r.r_idx) routers;
  let addr_owner = Hashtbl.create 64 in
  List.iteri
    (fun li ((a, b) as l) ->
      let a1, a2 = Topology.link_addrs li in
      Hashtbl.replace addr_owner (Ipv4.to_int a1)
        (Hashtbl.find by_name a, l);
      Hashtbl.replace addr_owner (Ipv4.to_int a2)
        (Hashtbl.find by_name b, l))
    topo.Topology.links;
  let w =
    { topo; loop; netsim; routers; by_name; addr_owner;
      cuts = Hashtbl.create 8; chaos_cfg;
      background = (p.dup, p.delay, p.jitter); lat_max; params = p;
      trace = Buffer.create 4096; violations = []; repaired = false }
  in
  Array.iter
    (fun r ->
      tr w "booted %s (protocols=%s)" r.r_name
        (Topology.protos_to_string r.r_protos))
    routers;
  tr w "topology: %d routers, %d links" (Array.length routers)
    (List.length topo.Topology.links);
  w

let eventloop w = w.loop
let size w = Array.length w.routers
let router_names w = Array.to_list w.routers |> List.map (fun r -> r.r_name)

let mgr w name =
  Option.map (fun i -> w.routers.(i).r_mgr) (Hashtbl.find_opt w.by_name name)

(* --- events ------------------------------------------------------------ *)

let link_endpoints w a b =
  match Topology.link_index w.topo (a, b) with
  | None -> None
  | Some li -> Some (Topology.link_addrs li)

let do_sever w a b ~reset =
  match link_endpoints w a b with
  | None -> tr w "sever %s %s: no such link" a b
  | Some (a1, a2) ->
    Hashtbl.replace w.cuts
      (if String.compare a b <= 0 then (a, b) else (b, a))
      ();
    Netsim.cut_link ~reset w.netsim ~a:a1 ~b:a2

let do_heal w a b =
  match link_endpoints w a b with
  | None -> tr w "heal %s %s: no such link" a b
  | Some (a1, a2) ->
    Hashtbl.remove w.cuts
      (if String.compare a b <= 0 then (a, b) else (b, a));
    Netsim.heal_link w.netsim ~a:a1 ~b:a2

let exec w ev =
  tr w "event: %s" (revent_to_string ev);
  match ev with
  | E_kill (r, c) -> (
    match mgr w r with
    | Some m -> Rtrmgr.kill_component m c
    | None -> tr w "kill: no router %s" r)
  | E_restart (r, c) -> (
    match mgr w r with
    | Some m -> Rtrmgr.restart_component m c
    | None -> tr w "restart: no router %s" r)
  | E_sever (a, b) -> do_sever w a b ~reset:false
  | E_heal (a, b) -> do_heal w a b
  | E_flap (a, b) ->
    (* A detectable bounce: interfaces drop (both sides see the reset),
       the wire returns two seconds later. *)
    do_sever w a b ~reset:true;
    ignore
      (Eventloop.after w.loop 2.0 (fun () ->
           tr w "flap %s %s: link back up" a b;
           do_heal w a b))
  | E_delay_burst dur ->
    w.chaos_cfg.Pf_chaos.delay <- 0.05;
    w.chaos_cfg.Pf_chaos.delay_jitter <- 0.05;
    let _, bg_delay, bg_jitter = w.background in
    ignore
      (Eventloop.after w.loop dur (fun () ->
           if w.repaired then begin
             w.chaos_cfg.Pf_chaos.delay <- 0.;
             w.chaos_cfg.Pf_chaos.delay_jitter <- 0.
           end
           else begin
             w.chaos_cfg.Pf_chaos.delay <- bg_delay;
             w.chaos_cfg.Pf_chaos.delay_jitter <- bg_jitter
           end;
           tr w "delay burst over"))

(* --- convergence ------------------------------------------------------- *)

let router_pending r =
  let m = r.r_mgr in
  let p f = function Some c -> Xrl_router.pending_sends (f c) | None -> 0 in
  p Fea.xrl_router (Rtrmgr.fea_opt m)
  + p Rib.xrl_router (Rtrmgr.rib_opt m)
  + p Bgp_process.xrl_router (Rtrmgr.bgp m)
  + p Rip_process.xrl_router (Rtrmgr.rip m)
  + p Ospf_process.xrl_router (Rtrmgr.ospf m)
  + Xrl_router.pending_sends (Rtrmgr.telemetry_router m)

let pending w =
  Array.fold_left (fun acc r -> acc + router_pending r) 0 w.routers

let router_signature r =
  let m = r.r_mgr in
  let rib_n = match Rtrmgr.rib_opt m with
    | Some c -> Rib.route_count c | None -> -1 in
  let fib_n = match Rtrmgr.fea_opt m with
    | Some f -> Fib.size (Fea.fib f) | None -> -1 in
  let bgp_n, est = match Rtrmgr.bgp m with
    | Some c -> (Bgp_process.route_count c, Bgp_process.established_count c)
    | None -> (-1, -1) in
  let rip_n = match Rtrmgr.rip m with
    | Some c -> Rip_process.route_count c | None -> -1 in
  let ospf_n = match Rtrmgr.ospf m with
    | Some c -> List.length (Ospf_process.route_table c) | None -> -1 in
  Printf.sprintf "%s:%d,%d,%d,%d,%d,%d" r.r_name rib_n fib_n bgp_n est rip_n
    ospf_n

let signature w =
  Array.to_list w.routers |> List.map router_signature |> String.concat " "

(* Same quiescence contract as the single-router harness — counts
   stable across a window longer than any periodic refresh, nothing in
   flight — with the sampling step off the protocols' timer grids.
   Returns whether the network converged and the virtual time of the
   last observed change, which is what the convergence benchmark
   measures. *)
let converge ?(step = 9.7) ?(needed = 5) ?(max_steps = 90) w =
  let last_change = ref (Eventloop.now w.loop) in
  let rec go n stable last =
    Eventloop.run_until_time w.loop (Eventloop.now w.loop +. step);
    let s = signature w in
    let quiet = s = last && pending w = 0 in
    if not quiet then last_change := Eventloop.now w.loop;
    let stable = if quiet then stable + 1 else 0 in
    if stable >= needed then true
    else if n >= max_steps then begin
      violation w "no convergence after %.0f s (signature %s)"
        (float_of_int max_steps *. step) s;
      false
    end
    else go (n + 1) stable s
  in
  let ok = go 0 0 "" in
  (ok, !last_change)

(* --- invariants -------------------------------------------------------- *)

(* Per-router: the same RIB/FIB agreement, stale-survivor, local
   loop-freedom and per-protocol origin checks the single-router
   harness runs — against this router's tables only. *)
let check_router w ~tag r =
  let m = r.r_mgr in
  let fail fmt =
    Printf.ksprintf (fun s -> violation w "%s: %s: %s" tag r.r_name s) fmt
  in
  (match (Rtrmgr.rib_opt m, Rtrmgr.fea_opt m) with
   | Some rib, Some fea ->
     let fib = Fea.fib fea in
     let missing =
       Rib.fold_winners rib
         (fun rt acc ->
           match Fib.get fib rt.Rib_route.net with
           | Some e when Ipv4.equal e.Fib.nexthop rt.Rib_route.nexthop -> acc
           | Some e ->
             fail "FIB nexthop for %s is %s, RIB says %s"
               (Ipv4net.to_string rt.Rib_route.net)
               (Ipv4.to_string e.Fib.nexthop)
               (Ipv4.to_string rt.Rib_route.nexthop);
             acc
           | None -> rt.Rib_route.net :: acc)
         []
     in
     List.iter
       (fun n -> fail "RIB winner %s missing from FIB" (Ipv4net.to_string n))
       missing;
     let rib_n = Rib.route_count rib and fib_n = Fib.size fib in
     if rib_n <> fib_n then
       fail "RIB has %d winners but FIB has %d entries" rib_n fib_n;
     let winners = Hashtbl.create 64 in
     Rib.fold_winners rib
       (fun rt () -> Hashtbl.replace winners rt.Rib_route.net ())
       ();
     List.iter
       (fun (e : Fib.entry) ->
         if not (Hashtbl.mem winners e.Fib.net) then
           fail "FIB entry %s (%s) has no RIB winner — stale survivor"
             (Ipv4net.to_string e.Fib.net)
             e.Fib.protocol)
       (Fib.entries fib);
     (* Local loop-freedom: nexthop resolution inside this FIB must
        bottom out on a connected subnet. iBGP winners resolve through
        the static /32s toward their originator's router id. *)
     List.iter
       (fun (e : Fib.entry) ->
         let rec walk hop addr =
           if hop > 32 then
             fail "forwarding loop resolving %s (via %s)"
               (Ipv4net.to_string e.Fib.net)
               (Ipv4.to_string e.Fib.nexthop)
           else
             match Fib.lookup fib addr with
             | None ->
               fail "nexthop %s of %s is unroutable" (Ipv4.to_string addr)
                 (Ipv4net.to_string e.Fib.net)
             | Some hit ->
               if not (String.equal hit.Fib.protocol "connected") then
                 walk (hop + 1) hit.Fib.nexthop
         in
         if not (String.equal e.Fib.protocol "connected") then
           walk 0 e.Fib.nexthop)
       (Fib.entries fib)
   | _ -> ());
  (match (Rtrmgr.rib_opt m, Rtrmgr.bgp m) with
   | Some rib, Some bgp ->
     (* BGP's rib branch skips peer-0 winners, so a router's own
        originated network lives in its BGP tables but never in its
        own RIB. *)
     let own = if origination r.r_protos = `Bgp then 1 else 0 in
     let b = Bgp_process.route_count bgp - own
     and o =
       Rib.origin_route_count rib "ebgp" + Rib.origin_route_count rib "ibgp"
     in
     if b <> o then
       fail "BGP holds %d peer-learned winners but RIB ebgp+ibgp origin \
             has %d" b o
   | _ -> ());
  (match (Rtrmgr.rib_opt m, Rtrmgr.rip m) with
   | Some rib, Some rip ->
     (* Same asymmetry as BGP: a locally injected RIP route (rsrc
        zero) is advertised to neighbours but never sent to the own
        RIB. *)
     let own = if origination r.r_protos = `Rip then 1 else 0 in
     let n = Rip_process.route_count rip - own
     and o = Rib.origin_route_count rib "rip" in
     if n <> o then
       fail "RIP holds %d wire-learned routes but RIB rip origin has %d" n o
   | _ -> ());
  (match (Rtrmgr.rib_opt m, Rtrmgr.ospf m) with
   | Some rib, Some ospf ->
     let n = List.length (Ospf_process.route_table ospf)
     and o = Rib.origin_route_count rib "ospf" in
     if n <> o then fail "OSPF holds %d routes but RIB ospf origin has %d" n o
   | _ -> ());
  (* Per-router transport telemetry, read from this router's
     namespace: the sim family cannot dispatch more than was sent. *)
  let ns_counter metric =
    match Telemetry.find_metric (r.r_name ^ "." ^ metric) with
    | Some (Telemetry.Counter c) -> Telemetry.counter_value c
    | _ -> 0
  in
  let tx = ns_counter "xrl.sim.requests_tx"
  and rx = ns_counter "xrl.sim.requests_rx" in
  if rx > tx then
    fail "sim transport dispatched %d requests but sent %d" rx tx

(* The routers a protocol's origin prefix must reach. RIP and OSPF
   propagate transitively (full-table updates, LSA flooding), so their
   reach is the origin's connected component in the protocol subgraph.
   BGP reaches everything in the BGP subgraph except across two
   consecutive iBGP hops (no iBGP-to-iBGP re-advertisement), which the
   BFS tracks as per-node arrival state. *)
let up_links w =
  List.filter
    (fun l -> not (Hashtbl.mem w.cuts l))
    w.topo.Topology.links

let proto_component w ~runs origin_idx =
  let n = Array.length w.routers in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      let ia = Hashtbl.find w.by_name a and ib = Hashtbl.find w.by_name b in
      if runs w.routers.(ia).r_protos && runs w.routers.(ib).r_protos then begin
        adj.(ia) <- ib :: adj.(ia);
        adj.(ib) <- ia :: adj.(ib)
      end)
    (up_links w);
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(origin_idx) <- true;
  Queue.push origin_idx q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.push v q
        end)
      adj.(u)
  done;
  seen

(* BGP reach with the iBGP relay rule, plus hop distances (used for
   the hop-optimality check on pure-eBGP topologies, where AS-path
   length equals router hops). *)
let bgp_reach w origin_idx =
  let n = Array.length w.routers in
  let is_ibgp i = w.routers.(i).r_protos.Topology.bgp = Topology.B_ibgp in
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      let ia = Hashtbl.find w.by_name a and ib = Hashtbl.find w.by_name b in
      if runs_bgp w.routers.(ia).r_protos && runs_bgp w.routers.(ib).r_protos
      then begin
        let ibgp = is_ibgp ia && is_ibgp ib in
        adj.(ia) <- (ib, ibgp) :: adj.(ia);
        adj.(ib) <- (ia, ibgp) :: adj.(ib)
      end)
    (up_links w);
  (* State: (node, arrived-over-iBGP?). *)
  let dist = Array.make (n * 2) max_int in
  let q = Queue.create () in
  let push st d = if dist.(st) < max_int then () else begin
    dist.(st) <- d; Queue.push st q end
  in
  List.iter
    (fun (v, ibgp) -> push ((v * 2) + Bool.to_int ibgp) 1)
    adj.(origin_idx);
  while not (Queue.is_empty q) do
    let st = Queue.pop q in
    let u = st / 2 and via_ibgp = st mod 2 = 1 in
    List.iter
      (fun (v, ibgp) ->
        if not (via_ibgp && ibgp) then
          push ((v * 2) + Bool.to_int ibgp) (dist.(st) + 1))
      adj.(u)
  done;
  Array.init n (fun i ->
      let d = min dist.(i * 2) dist.((i * 2) + 1) in
      if i = origin_idx then Some 0 else if d = max_int then None else Some d)

(* Resolve prefix [p] in router [xi]'s FIB down to the exit interface
   address of a directly linked neighbour. *)
let next_router w xi p =
  match Rtrmgr.fea_opt w.routers.(xi).r_mgr with
  | None -> `NoFea
  | Some fea ->
    let fib = Fea.fib fea in
    (match Fib.get fib p with
     | None -> `NoRoute
     | Some e ->
       let rec resolve hop nh =
         if hop > 8 then `Unresolvable nh
         else
           match Fib.lookup fib nh with
           | None -> `Unresolvable nh
           | Some f ->
             if String.equal f.Fib.protocol "connected" then `Exit nh
             else resolve (hop + 1) f.Fib.nexthop
       in
       resolve 0 e.Fib.nexthop)

(* Follow [p] router to router until it lands on its originator;
   returns the hop count. *)
let walk_to_origin w ~tag src_idx origin_idx p =
  let n = Array.length w.routers in
  let pname i = w.routers.(i).r_name in
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        violation w "%s: forwarding %s from %s: %s" tag (Ipv4net.to_string p)
          (pname src_idx) s)
      fmt
  in
  let rec go xi hops =
    if xi = origin_idx then Some hops
    else if hops > (2 * n) + 8 then begin
      fail "forwarding loop (no arrival after %d hops)" hops;
      None
    end
    else
      match next_router w xi p with
      | `NoFea -> None (* not judgeable *)
      | `NoRoute ->
        fail "dead end at %s (no route)" (pname xi);
        None
      | `Unresolvable nh ->
        fail "dead end at %s (nexthop %s unresolvable)" (pname xi)
          (Ipv4.to_string nh);
        None
      | `Exit nh -> (
        match Hashtbl.find_opt w.addr_owner (Ipv4.to_int nh) with
        | None ->
          fail "at %s exits toward %s, which is no router interface"
            (pname xi) (Ipv4.to_string nh);
          None
        | Some (owner, link) ->
          if Hashtbl.mem w.cuts link then begin
            fail "at %s exits over the cut link %s-%s" (pname xi) (fst link)
              (snd link);
            None
          end
          else if owner = xi then begin
            fail "at %s exits toward its own interface %s" (pname xi)
              (Ipv4.to_string nh);
            None
          end
          else go owner (hops + 1))
  in
  go src_idx 0

let all_alive w =
  Array.for_all
    (fun r ->
      Rtrmgr.fea_opt r.r_mgr <> None
      && Rtrmgr.rib_opt r.r_mgr <> None
      && (not (runs_bgp r.r_protos) || Rtrmgr.bgp r.r_mgr <> None)
      && ((not r.r_protos.Topology.rip) || Rtrmgr.rip r.r_mgr <> None)
      && ((not r.r_protos.Topology.ospf) || Rtrmgr.ospf r.r_mgr <> None))
    w.routers

let pure_ebgp w =
  Array.for_all
    (fun r ->
      r.r_protos.Topology.bgp = Topology.B_ebgp
      && (not r.r_protos.Topology.rip)
      && not r.r_protos.Topology.ospf)
    w.routers

(* Network-wide checks: run only when every component is up and no
   link is cut — mid-fault states are legitimately inconsistent. *)
let check_network w ~tag =
  let fail fmt = Printf.ksprintf (fun s -> violation w "%s: %s" tag s) fmt in
  let n = Array.length w.routers in
  let idx_of name = Hashtbl.find w.by_name name in
  (* Every configured BGP session over an up link is established. *)
  let bgp_degree = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      let ia = idx_of a and ib = idx_of b in
      if runs_bgp w.routers.(ia).r_protos && runs_bgp w.routers.(ib).r_protos
      then begin
        bgp_degree.(ia) <- bgp_degree.(ia) + 1;
        bgp_degree.(ib) <- bgp_degree.(ib) + 1
      end)
    (up_links w);
  Array.iter
    (fun r ->
      match Rtrmgr.bgp r.r_mgr with
      | Some bgp ->
        let est = Bgp_process.established_count bgp in
        if est <> bgp_degree.(r.r_idx) then
          fail "%s has %d established BGP sessions, topology says %d"
            r.r_name est bgp_degree.(r.r_idx)
      | None -> ())
    w.routers;
  (* Reachability, forwarding termination and hop-optimality, one
     origin prefix at a time. *)
  let hop_check = pure_ebgp w in
  Array.iter
    (fun (origin : router) ->
      let oi = origin.r_idx in
      let p = Topology.origin_prefix oi in
      let expected =
        match origination origin.r_protos with
        | `None -> Array.make n false
        | `Bgp -> Array.map (fun d -> d <> None) (bgp_reach w oi)
        | `Rip ->
          proto_component w ~runs:(fun pr -> pr.Topology.rip) oi
        | `Ospf ->
          proto_component w ~runs:(fun pr -> pr.Topology.ospf) oi
      in
      let dists =
        if hop_check then bgp_reach w oi else Array.make n None
      in
      Array.iter
        (fun (r : router) ->
          if r.r_idx <> oi then begin
            match Rtrmgr.fea_opt r.r_mgr with
            | None -> ()
            | Some fea ->
              let have = Fib.get (Fea.fib fea) p <> None in
              if expected.(r.r_idx) && not have then
                fail "%s should reach %s (origin %s) but has no route"
                  r.r_name (Ipv4net.to_string p) origin.r_name
              else if have then begin
                match walk_to_origin w ~tag r.r_idx oi p with
                | Some hops when hop_check -> (
                  match dists.(r.r_idx) with
                  | Some d when d <> hops ->
                    fail
                      "%s forwards %s to %s in %d hops; shortest path is %d"
                      r.r_name (Ipv4net.to_string p) origin.r_name hops d
                  | _ -> ())
                | _ -> ()
              end
          end)
        w.routers)
    w.routers

let check_all w ~tag =
  Array.iter (fun r -> check_router w ~tag r) w.routers;
  let p = pending w in
  if p <> 0 then
    violation w "%s: %d XRL sends still unsettled" tag p;
  if Hashtbl.length w.cuts = 0 && all_alive w then check_network w ~tag
  else tr w "%s: network-wide checks skipped (faults outstanding)" tag;
  tr w "%s: invariants checked (%s)" tag (signature w)

(* --- repair, teardown, runner ------------------------------------------ *)

let repair w =
  w.repaired <- true;
  w.chaos_cfg.Pf_chaos.dup_prob <- 0.;
  w.chaos_cfg.Pf_chaos.delay <- 0.;
  w.chaos_cfg.Pf_chaos.delay_jitter <- 0.;
  w.lat_max := 0.;
  let cut = Hashtbl.fold (fun l () acc -> l :: acc) w.cuts [] in
  List.iter (fun (a, b) -> do_heal w a b) (List.sort compare cut);
  Array.iter
    (fun r ->
      List.iter
        (fun c -> Rtrmgr.restart_component r.r_mgr c)
        [ `Fea; `Rib; `Bgp; `Rip; `Ospf ])
    w.routers;
  tr w "repaired: chaos off, links healed, all components up"

let teardown w =
  tr w "teardown";
  Array.iter (fun r -> Rtrmgr.shutdown r.r_mgr) w.routers;
  Eventloop.set_tie_break w.loop None;
  let bail = Eventloop.now w.loop +. 900. in
  let rec drain () =
    if
      (Eventloop.live_timers w.loop > 0 || Eventloop.live_tasks w.loop > 0)
      && Eventloop.now w.loop < bail
    then begin
      Eventloop.run_until_time w.loop (Eventloop.now w.loop +. 60.);
      drain ()
    end
  in
  drain ();
  let timers = Eventloop.live_timers w.loop in
  if timers <> 0 then
    violation w "teardown: %d timers leaked after shutdown" timers;
  let tasks = Eventloop.live_tasks w.loop in
  if tasks <> 0 then
    violation w "teardown: %d background tasks leaked after shutdown" tasks

let violations w = w.violations
let trace w = Buffer.contents w.trace

type outcome = {
  o_violations : string list;
  o_trace : string;
  o_sim_time : float;
  o_dispatched : int;
}

let run (p : params) topo ~events ~checkpoints ~horizon =
  let w = spawn p topo in
  List.iter
    (fun (at, ev) -> ignore (Eventloop.at w.loop at (fun () -> exec w ev)))
    events;
  List.iter
    (fun at ->
      Eventloop.run_until_time w.loop at;
      ignore (converge w);
      check_all w ~tag:(Printf.sprintf "check@%g" at))
    (List.sort compare checkpoints);
  let last_event =
    List.fold_left (fun acc (at, _) -> Float.max acc at) 0. events
  in
  Eventloop.run_until_time w.loop (Float.max horizon (last_event +. 10.));
  repair w;
  ignore (converge w);
  check_all w ~tag:"final";
  teardown w;
  { o_violations = w.violations; o_trace = Buffer.contents w.trace;
    o_sim_time = Eventloop.now w.loop;
    o_dispatched = Eventloop.events_dispatched w.loop }
