(** Declarative router topologies for the simulation harness.

    The paper's router is one stack; validating the {e routing system}
    needs many of them wired into networks. A topology is pure data:
    named routers, each with a protocol set, plus undirected links.
    {!Simnet} turns one into N booted router stacks over a shared
    simulated network; the scenario DSL ({!Simtest}) embeds the text
    form; the fuzzer generates, and shrinks, values of {!t} directly.

    {b Text form} — one declaration per line, [#] comments allowed:
    {[
      router r1 protocols=bgp,rip
      router r2 protocols=ibgp
      router r3 protocols=none
      link r1 r2
      topology grid 3x4        # sugar: expands a whole generated shape
    ]}
    Generators available behind [topology]: [chain N],
    [ibgp-fullmesh N], [grid RxC], [mixed N]. {!to_string} always
    prints the expanded canonical form (nodes in declaration order,
    links sorted), so [of_string (to_string t)] is the identity. *)

type bgp_mode = B_off | B_ebgp | B_ibgp

type protos = { bgp : bgp_mode; rip : bool; ospf : bool }

val bgp_only : protos
val ibgp_only : protos
val no_protos : protos

type node = { name : string; protos : protos }

type link = string * string
(** Undirected; stored with the lexicographically smaller name first. *)

type t = private { nodes : node list; links : link list }

val make : nodes:node list -> links:link list -> t
(** Canonicalize: links are normalised, deduplicated, and sorted.
    @raise Invalid_argument on duplicate or malformed router names,
    self-links, or links naming unknown routers. *)

val equal : t -> t -> bool
val size : t -> int

val node : t -> string -> node option
val node_index : t -> string -> int option
(** Position in [nodes]; drives the addressing scheme below. *)

val has_link : t -> link -> bool
val link_index : t -> link -> int option
val neighbors : t -> string -> string list

val drop_node : t -> string -> t
(** Remove a router and every link touching it (shrinking). *)

val drop_link : t -> link -> t

(** {1 Generators}

    All name routers [r1..rN], in index order. *)

val chain : int -> t
(** A line of N eBGP routers (router [i] gets its own AS). *)

val ibgp_fullmesh : int -> t
(** N routers in one AS, full-mesh linked and iBGP-peered. *)

val grid : int -> int -> t
(** [grid rows cols]: an eBGP lattice; router [r*cols + c] sits at
    [(r,c)]. *)

val mixed : int -> t
(** An eBGP core chain with RIP and OSPF edge routers hung off it
    round-robin; a core router attaching a leaf also runs the leaf's
    protocol. *)

val generate : seed:int -> t
(** The seed-indexed family the fuzzer explores: 2–8 routers over all
    generator shapes, plus up to two extra random links between eBGP
    nodes. Deterministic in [seed]. *)

(** {1 Text form} *)

val protos_to_string : protos -> string
(** ["bgp,rip"], ["ibgp"], ..., or ["none"]. *)

val to_string : t -> string
(** Canonical: [of_string (to_string t)] = [Ok t]. *)

val of_string : string -> (t, string) result

(** {1 Addressing}

    Every address in a simulated network derives from node and link
    indices, so a topology fully determines its address plan.
    Disjoint ranges: XRL planes in [10.0.0.0/16], link subnets from
    [10.1.0.0] up, origin prefixes in [198.18.0.0/15] (RFC 2544
    benchmarking space). *)

val sim_addr : int -> Ipv4.t
(** XRL-plane address of router [idx]; also its BGP id and OSPF
    router id. *)

val origin_prefix : int -> Ipv4net.t
(** The one prefix router [idx] originates into its protocols. *)

val link_subnet : int -> Ipv4net.t
(** The /24 owned by link [idx] (its position in [links]). *)

val link_addrs : int -> Ipv4.t * Ipv4.t
(** The two interface addresses on link [idx]: [.1] for the
    lexicographically lower-named end, [.2] for the other. *)
