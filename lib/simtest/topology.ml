(* Declarative router topologies for the simulation harness (see
   topology.mli). A topology is pure data — nodes with protocol sets
   and undirected links — plus the deterministic addressing scheme the
   multi-router world derives everything from. *)

type bgp_mode = B_off | B_ebgp | B_ibgp

type protos = { bgp : bgp_mode; rip : bool; ospf : bool }

let bgp_only = { bgp = B_ebgp; rip = false; ospf = false }
let ibgp_only = { bgp = B_ibgp; rip = false; ospf = false }
let no_protos = { bgp = B_off; rip = false; ospf = false }

type node = { name : string; protos : protos }

type link = string * string

type t = { nodes : node list; links : link list }

(* --- construction ------------------------------------------------------ *)

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.')
       n

let norm_link (a, b) = if String.compare a b <= 0 then (a, b) else (b, a)

let make ~nodes ~links =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if not (valid_name n.name) then
        invalid_arg (Printf.sprintf "Topology.make: bad router name %S" n.name);
      if Hashtbl.mem seen n.name then
        invalid_arg
          (Printf.sprintf "Topology.make: duplicate router %S" n.name);
      Hashtbl.replace seen n.name ())
    nodes;
  let links =
    List.map
      (fun (a, b) ->
        if a = b then
          invalid_arg (Printf.sprintf "Topology.make: self-link on %S" a);
        if not (Hashtbl.mem seen a) then
          invalid_arg (Printf.sprintf "Topology.make: link names unknown %S" a);
        if not (Hashtbl.mem seen b) then
          invalid_arg (Printf.sprintf "Topology.make: link names unknown %S" b);
        norm_link (a, b))
      links
    |> List.sort_uniq compare
  in
  { nodes; links }

let equal a b = a.nodes = b.nodes && a.links = b.links
let size t = List.length t.nodes

let node_index t name =
  let rec go i = function
    | [] -> None
    | n :: _ when n.name = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.nodes

let node t name = List.find_opt (fun n -> n.name = name) t.nodes
let has_link t ab = List.mem (norm_link ab) t.links

let link_index t ab =
  let ab = norm_link ab in
  let rec go i = function
    | [] -> None
    | l :: _ when l = ab -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.links

let neighbors t name =
  List.filter_map
    (fun (a, b) ->
      if a = name then Some b else if b = name then Some a else None)
    t.links

let drop_node t name =
  { nodes = List.filter (fun n -> n.name <> name) t.nodes;
    links = List.filter (fun (a, b) -> a <> name && b <> name) t.links }

let drop_link t ab =
  let ab = norm_link ab in
  { t with links = List.filter (fun l -> l <> ab) t.links }

(* --- generators -------------------------------------------------------- *)

let rname i = Printf.sprintf "r%d" (i + 1)

let chain n =
  if n < 1 then invalid_arg "Topology.chain";
  make
    ~nodes:(List.init n (fun i -> { name = rname i; protos = bgp_only }))
    ~links:(List.init (max 0 (n - 1)) (fun i -> (rname i, rname (i + 1))))

let ibgp_fullmesh n =
  if n < 1 then invalid_arg "Topology.ibgp_fullmesh";
  let links = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      links := (rname i, rname j) :: !links
    done
  done;
  make
    ~nodes:(List.init n (fun i -> { name = rname i; protos = ibgp_only }))
    ~links:!links

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Topology.grid";
  let at r c = rname ((r * cols) + c) in
  let links = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then links := (at r c, at r (c + 1)) :: !links;
      if r + 1 < rows then links := (at r c, at (r + 1) c) :: !links
    done
  done;
  make
    ~nodes:
      (List.init (rows * cols) (fun i -> { name = rname i; protos = bgp_only }))
    ~links:!links

(* An eBGP core chain with RIP and OSPF edge regions: the non-core
   routers hang off the core round-robin, alternating protocol, and
   the core router they attach to also runs that protocol so the leaf
   routes reach its RIB. *)
let mixed n =
  if n < 2 then invalid_arg "Topology.mixed";
  let ncore = max 2 ((n + 1) / 2) in
  let nleaf = n - ncore in
  let core = Array.init ncore (fun i -> { name = rname i; protos = bgp_only }) in
  let links = ref (List.init (ncore - 1) (fun i -> (rname i, rname (i + 1)))) in
  let leaves =
    List.init nleaf (fun j ->
        let attach = j mod ncore in
        let is_rip = j mod 2 = 0 in
        let protos =
          if is_rip then { no_protos with rip = true }
          else { no_protos with ospf = true }
        in
        core.(attach) <-
          (let p = core.(attach).protos in
           { core.(attach) with
             protos =
               (if is_rip then { p with rip = true } else { p with ospf = true })
           });
        links := (rname attach, rname (ncore + j)) :: !links;
        { name = rname (ncore + j); protos })
  in
  make ~nodes:(Array.to_list core @ leaves) ~links:!links

(* The seed-indexed family the fuzzer explores: small (the fault
   schedules, not raw size, are what it is searching over), but
   covering every generator shape plus random extra links. *)
let generate ~seed =
  let g = Rng.create ((seed * 0x2545F491) lxor 0x70B07069) in
  let n = 2 + Rng.int g 7 in
  let base =
    match Rng.int g 4 with
    | 0 -> chain n
    | 1 -> ibgp_fullmesh (min n 5)
    | 2 -> grid (1 + Rng.int g 2) (max 2 ((n + 1) / 2))
    | _ -> mixed n
  in
  (* Sprinkle extra links over the eBGP shapes (fullmesh has no room;
     leaves keep their single uplink so their routes stay attributable). *)
  let candidates =
    let names =
      List.filter_map
        (fun nd -> if nd.protos.bgp = B_ebgp then Some nd.name else None)
        base.nodes
    in
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if String.compare a b < 0 && not (has_link base (a, b)) then
              Some (a, b)
            else None)
          names)
      names
  in
  let extra = Rng.int g 3 in
  let rec add t k cands =
    if k = 0 || cands = [] then t
    else
      let i = Rng.int g (List.length cands) in
      let l = List.nth cands i in
      add
        (make ~nodes:t.nodes ~links:(l :: t.links))
        (k - 1)
        (List.filteri (fun j _ -> j <> i) cands)
  in
  add base extra candidates

(* --- text form --------------------------------------------------------- *)

let protos_to_string p =
  let toks =
    (match p.bgp with B_off -> [] | B_ebgp -> [ "bgp" ] | B_ibgp -> [ "ibgp" ])
    @ (if p.rip then [ "rip" ] else [])
    @ if p.ospf then [ "ospf" ] else []
  in
  match toks with [] -> "none" | _ -> String.concat "," toks

let protos_of_string s =
  if s = "none" then Ok no_protos
  else
    List.fold_left
      (fun acc tok ->
        match acc with
        | Error _ as e -> e
        | Ok p -> (
          match tok with
          | "bgp" -> Ok { p with bgp = B_ebgp }
          | "ibgp" -> Ok { p with bgp = B_ibgp }
          | "rip" -> Ok { p with rip = true }
          | "ospf" -> Ok { p with ospf = true }
          | t -> Error (Printf.sprintf "unknown protocol %S" t)))
      (Ok no_protos)
      (String.split_on_char ',' s |> List.filter (fun w -> w <> ""))

let to_string t =
  let b = Buffer.create 256 in
  List.iter
    (fun n ->
      Printf.bprintf b "router %s protocols=%s\n" n.name
        (protos_to_string n.protos))
    t.nodes;
  List.iter (fun (x, y) -> Printf.bprintf b "link %s %s\n" x y) t.links;
  Buffer.contents b

(* One topology line. [router]/[link] build the topology up
   incrementally; [topology <generator> ...] is sugar that expands a
   whole generated shape in place (and prints back in expanded form,
   so the canonical text never contains it). *)
let parse_line ~nodes ~links line words =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match words with
  | [ "router"; name ] ->
    nodes := { name; protos = bgp_only } :: !nodes;
    Ok true
  | [ "router"; name; p ] when String.length p > 10
                               && String.sub p 0 10 = "protocols=" ->
    (match protos_of_string (String.sub p 10 (String.length p - 10)) with
     | Ok protos ->
       nodes := { name; protos } :: !nodes;
       Ok true
     | Error e -> err "%s in %S" e line)
  | [ "link"; a; b ] ->
    links := (a, b) :: !links;
    Ok true
  | "topology" :: rest -> (
    let expand t =
      nodes := List.rev_append t.nodes !nodes;
      links := List.rev_append t.links !links;
      Ok true
    in
    match rest with
    | [ "chain"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> expand (chain n)
      | _ -> err "bad chain size in %S" line)
    | [ "ibgp-fullmesh"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> expand (ibgp_fullmesh n)
      | _ -> err "bad mesh size in %S" line)
    | [ "grid"; dims ] -> (
      match String.split_on_char 'x' dims with
      | [ r; c ] -> (
        match (int_of_string_opt r, int_of_string_opt c) with
        | Some r, Some c when r >= 1 && c >= 1 -> expand (grid r c)
        | _ -> err "bad grid size in %S" line)
      | _ -> err "bad grid size in %S" line)
    | [ "mixed"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 2 -> expand (mixed n)
      | _ -> err "bad mixed size in %S" line)
    | _ -> err "unknown generator in %S" line)
  | _ -> Ok false

let of_string text =
  let nodes = ref [] and links = ref [] in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let rec go = function
    | [] -> (
      try Ok (make ~nodes:(List.rev !nodes) ~links:(List.rev !links))
      with Invalid_argument m -> Error m)
    | line :: rest -> (
      let words =
        String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
      in
      match parse_line ~nodes ~links line words with
      | Ok true -> go rest
      | Ok false -> Error (Printf.sprintf "cannot parse line %S" line)
      | Error _ as e -> e)
  in
  go lines

(* --- addressing -------------------------------------------------------- *)

let ipv4 = Ipv4.of_octets

(* The XRL plane of router [idx] runs over simulated streams on its
   sim address; it doubles as the router's BGP id / OSPF router id.
   Kept disjoint from every link subnet (those start at 10.1.0.0). *)
let sim_addr idx =
  if idx < 0 || idx >= 250 * 250 then invalid_arg "Topology.sim_addr";
  ipv4 10 0 (idx / 250) (1 + (idx mod 250))

(* Each router originates one prefix into its routing protocol. *)
let origin_prefix idx =
  if idx < 0 || idx >= 250 * 256 then invalid_arg "Topology.origin_prefix";
  Ipv4net.make (ipv4 198 (18 + (idx / 256)) (idx mod 256) 0) 24

(* Link [idx] owns one /24; the lexicographically lower-named end gets
   .1, the other .2. *)
let link_subnet idx =
  if idx < 0 || idx >= 250 * 250 then invalid_arg "Topology.link_subnet";
  Ipv4net.make (ipv4 10 (1 + (idx / 250)) (idx mod 250) 0) 24

let link_addrs idx =
  let base = Ipv4.to_int (Ipv4net.network (link_subnet idx)) in
  (Ipv4.of_int (base + 1), Ipv4.of_int (base + 2))
