(** Topology-parametric simulation world: N full router stacks from
    one {!Topology.t}.

    Where {!Simtest} boots the paper's single device under test
    against three fixed peers, this module boots one complete router —
    Rtrmgr, FEA, RIB, and the protocols its node declares — per
    topology node, all on one virtual clock and one shared {!Netsim}.
    Each router gets its own Finder, its own XRL-plane address
    ({!Topology.sim_addr}) and its own telemetry namespace
    (["<name>."]), so N stacks coexist in one process without metric
    or registry collisions.

    Everything derives from the topology and the master seed: link
    interface addresses, BGP AS numbers and router ids, the one prefix
    each router originates, the per-router chaos streams. Two runs of
    the same (params, topology, events) triple produce byte-identical
    traces.

    Generated configurations detect faults inside the convergence
    window: BGP sessions hold for 30 s and redial every 4 s, RIP
    expires silent routes after 40 s, OSPF keeps its 20 s dead
    interval. iBGP nodes get one static /32 per iBGP neighbour so the
    preserved-nexthop routes (nexthop = originator's router id)
    resolve, standing in for the IGP of a real deployment. *)

type params = {
  seed : int;
  dup : float; (* ambient chaos: XRL duplication probability *)
  delay : float; (* ambient chaos: fixed XRL delay, seconds *)
  jitter : float; (* ambient chaos: uniform extra delay, seconds *)
  xrl_latency : float; (* max per-call virtual transport latency *)
  bgp_redump : bool;
  (* [false] injects the mesh-partition-heal bug: a re-established
     session is never re-dumped (Bgp_process's
     [redump_on_reestablish]). *)
  log_trace : bool;
}

val default_params : params

type revent =
  | E_kill of string * Rtrmgr.component
  | E_restart of string * Rtrmgr.component
  | E_sever of string * string (* silent cut: hold timers must notice *)
  | E_heal of string * string
  | E_flap of string * string (* reset cut, auto-heal 2 s later *)
  | E_delay_burst of float

val revent_to_string : revent -> string

type t

val spawn : params -> Topology.t -> t
(** Boot every router. @raise Failure if a generated configuration is
    rejected (a topology bug, not a scenario failure). *)

val eventloop : t -> Eventloop.t
val size : t -> int
val router_names : t -> string list
val mgr : t -> string -> Rtrmgr.t option

val exec : t -> revent -> unit
(** Apply one event now. Unknown router or link names trace a note and
    do nothing — shrinking drops topology pieces out from under
    scheduled events and the remnant schedule must still run. *)

val converge :
  ?step:float -> ?needed:int -> ?max_steps:int -> t -> bool * float
(** Run virtual time forward until every router's table counts are
    stable for [needed] consecutive samples [step] seconds apart with
    no XRL in flight (or give up after [max_steps] samples, recording
    a violation). Returns convergence and the virtual time of the last
    observed change — the convergence instant, up to [step]
    resolution. Defaults (9.7 s / 5 / 90) match the single-router
    harness; the benchmark narrows [step] for finer timing. *)

val check_all : t -> tag:string -> unit
(** Every invariant: per router, RIB/FIB agreement (mirror, stale
    survivors, local nexthop resolution), per-protocol origin counts,
    and tx >= rx on the router's own namespaced transport counters;
    network-wide — only when no link is cut and every component is up
    — BGP session counts against topology degree, origin-prefix
    reachability (BGP through the iBGP relay rule, RIP/OSPF through
    connected components), cross-router forwarding walks that must
    terminate at the originator without loops, and hop-optimality on
    pure-eBGP topologies. *)

val repair : t -> unit
val teardown : t -> unit

val violations : t -> string list
val trace : t -> string
val signature : t -> string
(** Per-router table counts, one token per router — the convergence
    and determinism fingerprint. *)

type outcome = {
  o_violations : string list;
  o_trace : string;
  o_sim_time : float;
  o_dispatched : int;
}

val run :
  params -> Topology.t -> events:(float * revent) list ->
  checkpoints:float list -> horizon:float -> outcome
(** The full scenario shape: spawn, schedule events, converge + check
    at each checkpoint, run to the horizon, repair, converge, final
    check, teardown. *)
