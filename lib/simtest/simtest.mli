(** Deterministic whole-router simulation harness.

    Runs the complete component stack of the paper — BGP, RIP, OSPF,
    the RIB and the FEA, wired over XRLs — inside one simulated world
    (one [`Sim] event loop, one {!Netsim}), surrounded by three peer
    routers (a BGP transit ISP, an OSPF neighbour, a RIP legacy box)
    booted from configuration by {!Rtrmgr}.

    One integer seed fully determines an execution:

    - XRL delivery schedules: the device-under-test's components talk
      over {!Pf_sim} with a seeded virtual-latency model, wrapped in
      {!Pf_chaos} whose reply duplication/delay draws come from the
      same master stream;
    - equal-deadline timer tie-breaks ({!Eventloop.set_tie_break});
    - the fault schedule (component kills via {!Pf_kill} signals,
      restarts, route flaps, silent session cuts, injected feed
      content) — scripted as a {!scenario};
    - injected route content (prefixes drawn from the feed stream).

    After the scripted events, the harness repairs the world (restarts
    anything still dead, turns chaos off), runs to quiescence, and
    checks cross-component invariants: RIB/FIB agreement, per-protocol
    route-count agreement, no forwarding loops, element-graph
    forwarding agreement with [Fib.lookup] (probe packets injected
    through the real data plane must exit toward the nexthop the FIB
    dictates, and TTL-expired probes must die inside the graph,
    counted), no unsettled XRLs, no leaked timers or background tasks
    after teardown, and telemetry consistency. The {!fuzz} driver explores seeds; on a failure it
    greedily shrinks the fault schedule to a minimal reproducing
    scenario, printable and re-runnable with {!of_string}/{!run}. *)

(** {1 Scenarios} *)

type component = C_fea | C_rib | C_bgp | C_rip | C_ospf

type source = S_bgp | S_rip | S_ospf
(** Which routing feed a flap perturbs: a BGP network originated by
    the ISP, a RIP route on the legacy box, an OSPF stub on the
    neighbour. *)

type op =
  | Kill of component      (** TERM signal via the kill family; the
                               component shuts down in place. *)
  | Restart of component   (** Rebuild and start the component (no-op
                               if alive). *)
  | Flap of source         (** Withdraw one route of the feed, re-add
                               it 2 s later. *)
  | Inject of int          (** Originate N fresh prefixes at the ISP,
                               drawn from the seeded feed stream. *)
  | Surge of int           (** Originate N fresh prefixes at the ISP,
                               then withdraw the last one in the same
                               virtual instant (two loop iterations
                               later), so the withdrawal chases the
                               surge through the DUT's staged inbound
                               queue and priority lanes (§5.1.2). *)
  | Sever                  (** Silently cut the DUT-ISP BGP session
                               (only hold timers can detect it). *)
  | Delay_burst of float   (** For the given duration, delay + jitter
                               XRL replies on the DUT's transport. *)
  | Check                  (** Converge, then run the invariant
                               checkers mid-scenario. *)
  | Kill_in of string * component
                           (** Topology worlds: kill the component in
                               the named router. In the fixed world
                               this is a traced no-op. *)
  | Restart_in of string * component
  | Link_sever of string * string
                           (** Topology worlds: silently cut the named
                               link (hold timers must notice). *)
  | Link_heal of string * string
  | Link_flap of string * string
                           (** Topology worlds: reset-cut the link,
                               auto-heal 2 s later. *)

type event = { at : float; op : op }

type chaos_levels = {
  dup : float;    (** probability an XRL reply is delivered twice *)
  delay : float;  (** fixed reply delay, seconds *)
  jitter : float; (** extra uniform reply delay, seconds *)
}

type scenario = {
  seed : int;               (** master seed: derives every stream *)
  background : chaos_levels; (** chaos active for the whole run *)
  xrl_latency : float;      (** max virtual latency per XRL transmit *)
  events : event list;      (** sorted by time *)
  horizon : float;          (** when repair + final checks begin *)
  topology : Topology.t option;
  (** [None] (default): the fixed 3-peer world around one device under
      test. [Some t]: {!Simnet} boots one full router stack per
      topology node instead, and the link/per-router ops above come
      alive. *)
}

val calm : chaos_levels
(** All zeros. *)

(** {2 Combinators} *)

val kill_at : float -> component -> event
val restart_at : float -> component -> event
val flap_at : float -> source -> event
val inject_routes : float -> int -> event
val surge_at : float -> int -> event
val partition : float -> event
(** Silent cut of the DUT-ISP session at the given time ({!Sever}). *)

val delay_burst_at : float -> dur:float -> event
val check_at : float -> event

val kill_in_at : float -> string -> component -> event
val restart_in_at : float -> string -> component -> event
val sever_link_at : float -> string -> string -> event
val heal_link_at : float -> string -> string -> event
val flap_link_at : float -> string -> string -> event

val scenario :
  ?seed:int -> ?background:chaos_levels -> ?xrl_latency:float ->
  ?horizon:float -> ?topology:Topology.t -> event list -> scenario
(** Events are sorted by time; defaults: seed 0, calm background, no
    extra latency, horizon 120 s, no topology (the fixed world). *)

(** {2 Replayable text form} *)

val to_string : scenario -> string
(** A line-oriented form, stable under {!of_string}; this is what the
    fuzzer prints for a shrunk counterexample. Topology scenarios embed
    the {!Topology.to_string} lines ([router ...]/[link ...]) directly
    in the same document. *)

val of_string : string -> (scenario, string) result

(** {1 Running} *)

type opts = {
  fea_rebirth_replay : bool;
  (** Passed to {!Rib.create}; [false] injects the known-bad recovery
      (held deltas only, no full FIB replay) so the harness can prove
      it catches the divergence. *)
  dataplane_ttl_leak : bool;
  (** [true] installs the DUT's element graph with [LeakDecTtl] — a
      DecTtl that decrements but forgets to kill expired packets — so
      the harness can prove the forwarding invariant (element graph
      agrees with {!Fib.lookup}; TTL-expired packets die inside the
      graph, visibly) catches the leak. *)
  bgp_lane_unordered : bool;
  (** [true] creates the DUT's BGP with [lane_ordered:false] — the
      priority lanes lose their per-prefix FIFO guard, so an urgent
      withdrawal can overtake the still-queued bulk add of the same
      prefix ({!Surge} provokes exactly this race) and BGP and the RIB
      end up disagreeing. The harness must catch the divergence. *)
  rib_resync : bool;
  (** Passed to the protocol processes as [rib_rebirth_resync];
      [false] injects the known-bad recovery (a reborn RIB is marked
      up but no protocol replays its table into it), so after a
      [kill rib]/restart the RIB origin tables stay empty while the
      protocols still hold routes — the per-protocol agreement
      invariant must catch the divergence. *)
  domains : int;
  (** Number of worker domains for the sharded BGP→RIB pipeline
      ({!Shard}); [1] (the default, and the fuzzer's mode) keeps the
      classic single-domain staged pipeline. With [domains > 1] the
      DUT's RIB and BGP are created with the pool's dispatchers, every
      quiescent point first drains the pool ({!Shard.quiesce}), and the
      invariant checks add a sharded one: replaying all per-shard
      winners through the delta path must change nothing, i.e. the
      union of the shard slices equals the merged tables the
      single-domain invariants inspect. Multi-domain runs keep all
      invariants but not the byte-identical [trace] — delta application
      order between shards depends on real domain scheduling — so fuzz
      shrinking stays on [domains = 1]. *)
  bgp_redump : bool;
  (** Passed to {!Bgp_process} as [redump_on_reestablish]; [false]
      injects the mesh-partition-heal bug — after a cut session
      re-establishes, the winners are never re-dumped, so routes
      withdrawn during the partition stay missing on the far side.
      Only topology scenarios with link events can expose it. *)
  log_trace : bool;
  (** Also print trace lines to stderr as they happen. *)
}

val default_opts : opts
(** Replay on, no injected bugs, no live trace. *)

type outcome = {
  ran : scenario;
  violations : string list; (** empty = all invariants green *)
  trace : string;           (** byte-identical across runs of the same
                                scenario (same seed, same opts) *)
  sim_time : float;         (** virtual seconds elapsed *)
  dispatched : int;         (** event-loop callbacks dispatched *)
}

val run : ?opts:opts -> scenario -> outcome
(** Build the world, play the scenario, repair, converge, check
    invariants, tear down, check for leaks. *)

(** {1 Fuzzing} *)

val generate : seed:int -> scenario
(** The seed-indexed scenario family the fuzzer explores: 0-4 faults
    (kills, restarts, flaps, injections, surges, severs, delay bursts)
    at seeded times, seeded background chaos and latency. *)

val generate_topo : seed:int -> scenario
(** The topology-parametric family: a {!Topology.generate}d network
    (2-8 routers over all generator shapes) plus 1-4 faults drawn
    against {e that} topology — per-router component kills/restarts,
    link flaps, silent severs with optional heals, delay bursts. *)

type fuzz_result = {
  seeds_run : int;
  failed : (outcome * scenario) option;
  (** On failure: the original failing outcome and the shrunk minimal
      scenario (re-run it with {!run} or print it with
      {!to_string}). *)
  shrink_runs : int; (** extra runs spent shrinking *)
}

val fuzz :
  ?opts:opts -> ?progress:(int -> unit) -> ?topo:bool ->
  base:int -> count:int -> unit -> fuzz_result
(** Run [generate]d scenarios for seeds [base .. base+count-1],
    stopping at the first failure and shrinking it. [progress] is
    called with each seed before it runs. [~topo:true] draws from
    {!generate_topo} instead, fuzzing whole networks. *)

val shrink : ?opts:opts -> scenario -> scenario * int
(** Greedily drop events, then — for topology scenarios — drop routers
    and links from the topology itself (events orphaned by a removed
    piece become traced no-ops and are swept by a final event pass),
    then zero chaos parameters, keeping every mutation that still
    fails; returns the minimal scenario and how many runs were spent.
    The input must fail under [opts]. *)
