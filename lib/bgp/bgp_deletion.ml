(* Dynamic deletion stages (paper §5.1.2, Figure 6).

   When a peering goes down, deleting 100k+ routes in one event handler
   would stall the router, and the peering may come back up before the
   deletion finishes. So the PeerIn hands its entire route table to a
   freshly created deletion stage plumbed directly after it, and starts
   over with an empty table — immediately ready for the peering to
   return.

   The deletion stage walks its victim table as a background task,
   emitting delete_route messages downstream. Consistency is preserved
   against concurrent traffic: an add_route passing through for a
   prefix still held here first emits the old route's delete, then the
   add. lookup_route answers with the upstream (new) route if one
   exists, else the not-yet-deleted victim. Downstream stages never
   know a background deletion is happening. If the peering flaps
   repeatedly, deletion stages stack up, each holding a disjoint set of
   victims; each unplumbs and discards itself when its work is done. *)

class deletion_table ~name ~(victims : Bgp_types.route Ptree.t)
    ~(parent : Bgp_table.table) (loop : Eventloop.t) =
  object (self)
    inherit Bgp_table.base name
    val mutable task : Eventloop.task option = None
    val mutable deleted = 0

    method victims_remaining = Ptree.size victims
    method deleted_count = deleted

    (* [slice] = victims deleted per background slice. *)
    method start ?(slice = 100) ~(on_complete : unit -> unit) () =
      let it = Ptree.Safe_iter.start victims in
      let one () =
        match Ptree.Safe_iter.next it with
        | None ->
          task <- None;
          on_complete ();
          `Done
        | Some (net, r) ->
          ignore (Ptree.remove victims net);
          deleted <- deleted + 1;
          (* A whole-table teardown is bulk work: it must not crowd
             fresh updates out of the urgent lane downstream. *)
          Bgp_types.with_lane Laneq.Bulk (fun () -> self#push_delete r);
          `Continue
      in
      task <- Some (Eventloop.add_task loop ~weight:slice one)

    method add_route r =
      (* A new session re-announced a prefix we still hold: the old
         route's deletion can no longer wait. *)
      (match Ptree.remove victims r.Bgp_types.net with
       | Some old ->
         deleted <- deleted + 1;
         self#push_delete old
       | None -> ());
      self#push_add r

    method delete_route r =
      (* The new session withdrew a prefix. If we happen to still hold
         an old victim for it (the add purged it, so normally not),
         translate to the victim's deletion. *)
      match Ptree.remove victims r.Bgp_types.net with
      | Some old ->
        deleted <- deleted + 1;
        self#push_delete old
      | None -> self#push_delete r

    method lookup_route net =
      match parent#lookup_route net with
      | Some _ as r -> r
      | None -> Ptree.find victims net

    method find_victim net = Ptree.find victims net
  end
