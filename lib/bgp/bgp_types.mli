(** Core BGP data types: path attributes, routes as they flow through
    the staged pipeline, and peer metadata used by the decision
    process. *)

type origin = IGP | EGP | INCOMPLETE

val origin_rank : origin -> int
(** IGP 0 < EGP 1 < INCOMPLETE 2 (lower preferred). *)

val origin_to_string : origin -> string

type attrs = {
  origin : origin;
  aspath : Aspath.t;
  nexthop : Ipv4.t;
  med : int option;
  localpref : int option;   (** Present on IBGP sessions. *)
  communities : int list;   (** 32-bit community values. *)
  atomic_aggregate : bool;
}

val default_attrs : nexthop:Ipv4.t -> attrs
(** IGP origin, empty AS path, no MED/localpref/communities. *)

val attrs_equal : attrs -> attrs -> bool

type route = {
  net : Ipv4net.t;
  attrs : attrs;
  peer_id : int;
  (** Which PeerIn branch the route entered through; 0 is the local
      branch (originated networks). *)
  igp_metric : int option;
  (** Annotated by the nexthop-resolver stage: [Some m] when the
      nexthop resolves through the IGP with metric [m]; [None] when
      unresolved (the decision process ignores such routes). *)
}

val route_equal : route -> route -> bool
val route_to_string : route -> string

type peer_kind = Ebgp | Ibgp

type peer_info = {
  peer_id : int;
  peer_addr : Ipv4.t;
  peer_as : int;
  kind : peer_kind;
  peer_bgp_id : Ipv4.t;
}

val local_peer_info : local_as:int -> bgp_id:Ipv4.t -> peer_info
(** The pseudo-peer (id 0) for locally originated networks. *)

val effective_localpref : attrs -> int
(** [localpref] or the conventional default 100. *)

(** {1 Ambient priority lane}

    The urgent/bulk lane ({!Laneq.lane}) a route change is travelling
    in, threaded through the staged pipeline like trace contexts:
    stages that defer work capture the current lane with each entry and
    reinstate it when draining. Default is [Urgent]. *)

val current_lane : unit -> Laneq.lane

val with_lane : Laneq.lane -> (unit -> 'a) -> 'a
(** [with_lane lane f] runs [f] with the ambient lane set to [lane],
    restoring the previous lane afterwards (exception-safe). *)
