type segment = Seq of int list | Set of int list
type t = segment list

let empty = []

let length path =
  List.fold_left
    (fun acc seg ->
       match seg with
       | Seq l -> acc + List.length l
       | Set _ -> acc + 1)
    0 path

let prepend asn path =
  match path with
  | Seq l :: rest when List.length l < 255 -> Seq (asn :: l) :: rest
  | _ -> Seq [ asn ] :: path

let rec prepend_n asn n path =
  if n <= 0 then path else prepend_n asn (n - 1) (prepend asn path)

let contains path asn =
  List.exists
    (function Seq l | Set l -> List.mem asn l)
    path

let first_as = function
  | Seq (a :: _) :: _ -> Some a
  | _ -> None

let origin_as path =
  match List.rev path with
  | Seq l :: _ ->
    (match List.rev l with a :: _ -> Some a | [] -> None)
  | Set l :: _ ->
    (match List.rev l with a :: _ -> Some a | [] -> None)
  | [] -> None

let to_string path =
  String.concat " "
    (List.map
       (function
         | Seq l -> String.concat " " (List.map string_of_int l)
         | Set l ->
           "{" ^ String.concat "," (List.map string_of_int l) ^ "}")
       path)

let equal = ( = )

let seg_type_set = 1
let seg_type_seq = 2

let encode w path =
  List.iter
    (fun seg ->
       let ty, asns =
         match seg with
         | Set l -> (seg_type_set, l)
         | Seq l -> (seg_type_seq, l)
       in
       Wire.W.u8 w ty;
       Wire.W.u8 w (List.length asns);
       List.iter (Wire.W.u32 w) asns)
    path

let decode r =
  let rec go acc =
    if Wire.R.eof r then List.rev acc
    else begin
      let ty = Wire.R.u8 r in
      let n = Wire.R.u8 r in
      let asns = List.init n (fun _ -> Wire.R.u32 r) in
      let seg =
        if ty = seg_type_set then Set asns
        else if ty = seg_type_seq then Seq asns
        else failwith (Printf.sprintf "Aspath.decode: bad segment type %d" ty)
      in
      go (seg :: acc)
    end
  in
  go []
