type origin = IGP | EGP | INCOMPLETE

let origin_rank = function IGP -> 0 | EGP -> 1 | INCOMPLETE -> 2

let origin_to_string = function
  | IGP -> "igp"
  | EGP -> "egp"
  | INCOMPLETE -> "incomplete"

type attrs = {
  origin : origin;
  aspath : Aspath.t;
  nexthop : Ipv4.t;
  med : int option;
  localpref : int option;
  communities : int list;
  atomic_aggregate : bool;
}

let default_attrs ~nexthop =
  { origin = IGP; aspath = Aspath.empty; nexthop; med = None;
    localpref = None; communities = []; atomic_aggregate = false }

let attrs_equal a b =
  a.origin = b.origin
  && Aspath.equal a.aspath b.aspath
  && Ipv4.equal a.nexthop b.nexthop
  && a.med = b.med
  && a.localpref = b.localpref
  && a.communities = b.communities
  && a.atomic_aggregate = b.atomic_aggregate

type route = {
  net : Ipv4net.t;
  attrs : attrs;
  peer_id : int;
  igp_metric : int option;
}

let route_equal a b =
  Ipv4net.equal a.net b.net
  && a.peer_id = b.peer_id
  && attrs_equal a.attrs b.attrs
  && a.igp_metric = b.igp_metric

let route_to_string r =
  Printf.sprintf "%s nh %s path [%s] peer %d%s"
    (Ipv4net.to_string r.net)
    (Ipv4.to_string r.attrs.nexthop)
    (Aspath.to_string r.attrs.aspath)
    r.peer_id
    (match r.igp_metric with
     | Some m -> Printf.sprintf " igp %d" m
     | None -> " unresolved")

type peer_kind = Ebgp | Ibgp

type peer_info = {
  peer_id : int;
  peer_addr : Ipv4.t;
  peer_as : int;
  kind : peer_kind;
  peer_bgp_id : Ipv4.t;
}

let local_peer_info ~local_as ~bgp_id =
  { peer_id = 0; peer_addr = Ipv4.zero; peer_as = local_as; kind = Ibgp;
    peer_bgp_id = bgp_id }

let effective_localpref attrs = Option.value attrs.localpref ~default:100

(* Ambient priority lane (urgent vs bulk), threaded through the staged
   pipeline the same way trace contexts are: stages that defer work
   capture the current lane alongside the entry and reinstate it when
   draining, so a route classified bulk at the inbound staging queue
   stays in the bulk lane all the way to the RIB hand-off. The default
   is Urgent: interactive paths (originate/withdraw, redistribution,
   nexthop invalidation) never wait behind a bulk backlog. *)
let current_lane_ref = ref Laneq.Urgent

let current_lane () = !current_lane_ref

let with_lane lane f =
  let saved = !current_lane_ref in
  current_lane_ref := lane;
  Fun.protect ~finally:(fun () -> current_lane_ref := saved) f
