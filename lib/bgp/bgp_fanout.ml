(* The Fanout Queue (paper §5.1.1, Figure 5).

   Duplicates the Decision Process's winner stream to each peer's
   output branch and to the RIB branch. "Since the outgoing filter
   banks modify routes in different ways for different peers, the best
   place to queue changes is in the fanout stage, after the routes have
   been chosen but before they have been specialized. The Fanout Queue
   module then maintains a single route change queue, with n readers
   (one for each peer) referencing it."

   Each reader drains a bounded batch per event-loop pass (slow peers
   simply leave their cursor behind; memory is shared in the one
   queue); fully-consumed entries are compacted away. Per-reader
   advertisement rules: never echo to the originating peer, and no
   IBGP-to-IBGP re-advertisement (we are not a route reflector).

   Two lanes: changes arriving in the ambient bulk lane (a table load
   being drained from an inbound staging queue) land in a bulk log;
   urgent changes (a flap during that load) land in an urgent log that
   every reader drains first, so a flap overtakes a 146k-entry load
   backlog here instead of queueing behind it. Per-prefix FIFO order is
   preserved across lanes (§5.1.2): an urgent change for a prefix that
   still has entries in the bulk log is demoted to the bulk lane, so it
   cannot overtake older work for its own prefix even for the slowest
   reader. [ordered:false] disables that guard — the deliberately
   broken variant the simulation fuzzer must catch. *)

(* Entries remember the trace context that was ambient when they were
   queued: the drain runs in a later event-loop pass, so the context
   must travel with the entry for spans emitted downstream (output
   branches, the RIB branch) to stay linked to the originating update.
   The lane does not need storing: it is which log the entry sits in,
   and the drain reinstates it as the ambient lane for downstream
   stages. *)
type entry = {
  op : [ `Add | `Delete ];
  route : Bgp_types.route;
  trace : Telemetry.Trace.ctx option;
}

(* One growable append-only log (ring-less; compaction blits). *)
type log = {
  mutable entries : entry array;
  mutable base : int; (* absolute index of entries.(0) *)
  mutable count : int; (* live entries *)
}

let make_log () = { entries = [||]; base = 0; count = 0 }

let log_append l e =
  if l.count >= Array.length l.entries then begin
    let ncap = max 64 (2 * Array.length l.entries) in
    let na = Array.make ncap e in
    Array.blit l.entries 0 na 0 l.count;
    l.entries <- na
  end;
  l.entries.(l.count) <- e;
  l.count <- l.count + 1

type reader = {
  r_peer : Bgp_types.peer_info;
  r_branch : Bgp_table.table;
  mutable u_cursor : int; (* absolute index into the urgent log *)
  mutable b_cursor : int; (* absolute index into the bulk log *)
}

class fanout_table ~name ?(batch = 500) ?(ordered = true)
    ~(peer_info_of : int -> Bgp_types.peer_info option) (loop : Eventloop.t) =
  object (self)
    inherit Bgp_table.base name
    val h_add = Telemetry.histogram ("bgp." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("bgp." ^ name ^ ".delete_us")
    val g_urgent = Telemetry.gauge ("bgp." ^ name ^ ".lane.urgent")
    val g_bulk = Telemetry.gauge ("bgp." ^ name ^ ".lane.bulk")
    val urgent = make_log ()
    val bulk = make_log ()
    (* Prefixes with entries still in the bulk log (until compaction
       proves every reader consumed them), counted; the §5.1.2 guard. *)
    val bulk_pending : (Ipv4net.t, int) Hashtbl.t = Hashtbl.create 256
    val readers : (int, reader) Hashtbl.t = Hashtbl.create 8
    val mutable drain_scheduled = false
    val mutable peak_queue = 0
    val mutable demoted = 0

    method reader_count = Hashtbl.length readers
    method queue_length = urgent.count + bulk.count
    method urgent_length = urgent.count
    method bulk_length = bulk.count
    method peak_queue_length = peak_queue
    method demoted = demoted

    method private set_lane_gauges =
      Telemetry.set_gauge g_urgent (float_of_int urgent.count);
      Telemetry.set_gauge g_bulk (float_of_int bulk.count)

    method private append lane e =
      let net = e.route.Bgp_types.net in
      let lane =
        match (lane : Laneq.lane) with
        | Laneq.Urgent when ordered && Hashtbl.mem bulk_pending net ->
          (* Older work for this prefix is still in the bulk log:
             demote so no reader can see this change overtake it. *)
          demoted <- demoted + 1;
          Laneq.Bulk
        | lane -> lane
      in
      (match lane with
       | Laneq.Urgent -> log_append urgent e
       | Laneq.Bulk ->
         let n = Option.value (Hashtbl.find_opt bulk_pending net) ~default:0 in
         Hashtbl.replace bulk_pending net (n + 1);
         log_append bulk e);
      let len = self#queue_length in
      if len > peak_queue then peak_queue <- len;
      self#set_lane_gauges;
      self#schedule_drain

    method private schedule_drain =
      if not drain_scheduled then begin
        drain_scheduled <- true;
        Eventloop.defer loop (fun () ->
            drain_scheduled <- false;
            self#drain)
      end

    method private should_send (r : reader) (e : entry) =
      let from_id = e.route.Bgp_types.peer_id in
      if from_id = 0 then true (* locally originated: everywhere *)
      else if from_id = r.r_peer.peer_id then false (* no echo *)
      else
        match peer_info_of from_id with
        | Some from when from.kind = Bgp_types.Ibgp
                         && r.r_peer.kind = Bgp_types.Ibgp ->
          false (* no IBGP-to-IBGP re-advertisement *)
        | _ -> true

    method private deliver (r : reader) (e : entry) lane =
      if self#should_send r e then
        Bgp_types.with_lane lane (fun () ->
            Telemetry.Trace.with_ctx e.trace (fun () ->
                match e.op with
                | `Add -> r.r_branch#add_route e.route
                | `Delete -> r.r_branch#delete_route e.route))

    method private drain =
      let u_tail = urgent.base + urgent.count in
      let b_tail = bulk.base + bulk.count in
      let more = ref false in
      Hashtbl.iter
        (fun _ r ->
           (* Urgent lane first, and always dry before bulk: the lane
              guard's per-prefix ordering argument depends on it.
              Urgent volume is flap-sized, so no batch bound here. *)
           while r.u_cursor < u_tail do
             let e = urgent.entries.(r.u_cursor - urgent.base) in
             r.u_cursor <- r.u_cursor + 1;
             self#deliver r e Laneq.Urgent
           done;
           let budget = ref batch in
           while r.b_cursor < b_tail && !budget > 0 do
             let e = bulk.entries.(r.b_cursor - bulk.base) in
             r.b_cursor <- r.b_cursor + 1;
             decr budget;
             self#deliver r e Laneq.Bulk
           done;
           if r.b_cursor < b_tail then more := true)
        readers;
      self#compact;
      self#set_lane_gauges;
      if !more then self#schedule_drain

    method private compact =
      let u_min, b_min =
        Hashtbl.fold
          (fun _ r (u, b) -> (min u r.u_cursor, min b r.b_cursor))
          readers
          (urgent.base + urgent.count, bulk.base + bulk.count)
      in
      let drop_log l min_cursor on_drop =
        let drop = min_cursor - l.base in
        if drop > 0 then begin
          (match on_drop with
           | None -> ()
           | Some f ->
             for i = 0 to drop - 1 do f l.entries.(i) done);
          let remaining = l.count - drop in
          if remaining > 0 then Array.blit l.entries drop l.entries 0 remaining;
          l.count <- remaining;
          l.base <- min_cursor
        end
      in
      drop_log urgent u_min None;
      drop_log bulk b_min
        (Some
           (fun e ->
              let net = e.route.Bgp_types.net in
              match Hashtbl.find_opt bulk_pending net with
              | Some n when n <= 1 -> Hashtbl.remove bulk_pending net
              | Some n -> Hashtbl.replace bulk_pending net (n - 1)
              | None -> ()))

    method add_route route =
      Telemetry.time h_add (fun () ->
          self#append (Bgp_types.current_lane ())
            { op = `Add; route; trace = Telemetry.Trace.current () })

    method delete_route route =
      Telemetry.time h_del (fun () ->
          self#append (Bgp_types.current_lane ())
            { op = `Delete; route; trace = Telemetry.Trace.current () })

    (* Pulls pass through to the decision stage upstream. The fanout
       has no store of its own. *)
    val mutable parent_tbl : Bgp_table.table option = None
    method set_parent (p : Bgp_table.table) = parent_tbl <- Some p

    method lookup_route net =
      match parent_tbl with
      | Some p -> p#lookup_route net
      | None -> None

    (* New readers start at both queue tails: they see only future
       updates. The owner dumps the existing table to them separately
       (Bgp_process runs a background winner-table dump on session
       establishment). *)
    method add_reader ~(info : Bgp_types.peer_info) (branch : Bgp_table.table)
      =
      Hashtbl.replace readers info.peer_id
        { r_peer = info; r_branch = branch;
          u_cursor = urgent.base + urgent.count;
          b_cursor = bulk.base + bulk.count }

    method remove_reader peer_id =
      Hashtbl.remove readers peer_id;
      self#compact;
      self#set_lane_gauges

    method has_reader peer_id = Hashtbl.mem readers peer_id
  end
