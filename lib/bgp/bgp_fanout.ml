(* The Fanout Queue (paper §5.1.1, Figure 5).

   Duplicates the Decision Process's winner stream to each peer's
   output branch and to the RIB branch. "Since the outgoing filter
   banks modify routes in different ways for different peers, the best
   place to queue changes is in the fanout stage, after the routes have
   been chosen but before they have been specialized. The Fanout Queue
   module then maintains a single route change queue, with n readers
   (one for each peer) referencing it."

   Each reader drains a bounded batch per event-loop pass (slow peers
   simply leave their cursor behind; memory is shared in the one
   queue); fully-consumed entries are compacted away. Per-reader
   advertisement rules: never echo to the originating peer, and no
   IBGP-to-IBGP re-advertisement (we are not a route reflector). *)

(* Entries remember the trace context that was ambient when they were
   queued: the drain runs in a later event-loop pass, so the context
   must travel with the entry for spans emitted downstream (output
   branches, the RIB branch) to stay linked to the originating update. *)
type entry = {
  op : [ `Add | `Delete ];
  route : Bgp_types.route;
  trace : Telemetry.Trace.ctx option;
}

type reader = {
  r_peer : Bgp_types.peer_info;
  r_branch : Bgp_table.table;
  mutable cursor : int; (* absolute entry index *)
}

class fanout_table ~name ?(batch = 500)
    ~(peer_info_of : int -> Bgp_types.peer_info option) (loop : Eventloop.t) =
  object (self)
    inherit Bgp_table.base name
    val h_add = Telemetry.histogram ("bgp." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("bgp." ^ name ^ ".delete_us")
    val mutable entries : entry array = [||] (* ring-less growable log *)
    val mutable base = 0      (* absolute index of entries.(0) *)
    val mutable count = 0     (* live entries *)
    val readers : (int, reader) Hashtbl.t = Hashtbl.create 8
    val mutable drain_scheduled = false
    val mutable peak_queue = 0

    method reader_count = Hashtbl.length readers
    method queue_length = count
    method peak_queue_length = peak_queue

    method private append e =
      if count >= Array.length entries then begin
        let ncap = max 64 (2 * Array.length entries) in
        let na = Array.make ncap e in
        Array.blit entries 0 na 0 count;
        entries <- na
      end;
      entries.(count) <- e;
      count <- count + 1;
      if count > peak_queue then peak_queue <- count;
      self#schedule_drain

    method private schedule_drain =
      if not drain_scheduled then begin
        drain_scheduled <- true;
        Eventloop.defer loop (fun () ->
            drain_scheduled <- false;
            self#drain)
      end

    method private should_send (r : reader) (e : entry) =
      let from_id = e.route.Bgp_types.peer_id in
      if from_id = 0 then true (* locally originated: everywhere *)
      else if from_id = r.r_peer.peer_id then false (* no echo *)
      else
        match peer_info_of from_id with
        | Some from when from.kind = Bgp_types.Ibgp
                         && r.r_peer.kind = Bgp_types.Ibgp ->
          false (* no IBGP-to-IBGP re-advertisement *)
        | _ -> true

    method private drain =
      let tail = base + count in
      let more = ref false in
      Hashtbl.iter
        (fun _ r ->
           let budget = ref batch in
           while r.cursor < tail && !budget > 0 do
             let e = entries.(r.cursor - base) in
             r.cursor <- r.cursor + 1;
             decr budget;
             if self#should_send r e then
               Telemetry.Trace.with_ctx e.trace (fun () ->
                   match e.op with
                   | `Add -> r.r_branch#add_route e.route
                   | `Delete -> r.r_branch#delete_route e.route)
           done;
           if r.cursor < tail then more := true)
        readers;
      self#compact;
      if !more then self#schedule_drain

    method private compact =
      let min_cursor =
        Hashtbl.fold (fun _ r acc -> min acc r.cursor) readers (base + count)
      in
      let drop = min_cursor - base in
      if drop > 0 then begin
        let remaining = count - drop in
        if remaining > 0 then Array.blit entries drop entries 0 remaining;
        count <- remaining;
        base <- min_cursor
      end

    method add_route route =
      Telemetry.time h_add (fun () ->
          self#append
            { op = `Add; route; trace = Telemetry.Trace.current () })

    method delete_route route =
      Telemetry.time h_del (fun () ->
          self#append
            { op = `Delete; route; trace = Telemetry.Trace.current () })

    (* Pulls pass through to the decision stage upstream. The fanout
       has no store of its own. *)
    val mutable parent_tbl : Bgp_table.table option = None
    method set_parent (p : Bgp_table.table) = parent_tbl <- Some p

    method lookup_route net =
      match parent_tbl with
      | Some p -> p#lookup_route net
      | None -> None

    (* New readers start at the queue tail: they see only future
       updates. The owner dumps the existing table to them separately
       (Bgp_process runs a background winner-table dump on session
       establishment). *)
    method add_reader ~(info : Bgp_types.peer_info) (branch : Bgp_table.table)
      =
      Hashtbl.replace readers info.peer_id
        { r_peer = info; r_branch = branch; cursor = base + count }

    method remove_reader peer_id =
      Hashtbl.remove readers peer_id;
      self#compact

    method has_reader peer_id = Hashtbl.mem readers peer_id
  end
