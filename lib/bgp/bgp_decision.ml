(* The Decision Process (paper §5.1.1, Figure 5) — deliberately simple
   because nexthop resolution was factored out into upstream resolver
   stages: by the time a route reaches Decision it is already annotated
   with its IGP metric, so deciding is a pure comparison.

   Decision has one parent per peer branch. On any add or delete it
   pulls the current candidate from every branch via lookup_route,
   picks the best by the standard BGP tie-break ladder, diffs against
   its winner cache, and emits the delta downstream (to the fanout).
   The winner cache is duplicated state — the memory cost §5.1 accepts
   for stage independence — and doubles as the table dumped to newly
   established peers. *)

(* The tie-break ladder. Returns true when [a] beats [b]. *)
let better (a : Bgp_types.route) (ia : Bgp_types.peer_info)
    (b : Bgp_types.route) (ib : Bgp_types.peer_info) =
  let cmp =
    (* 1. higher localpref *)
    let c =
      compare
        (Bgp_types.effective_localpref b.attrs)
        (Bgp_types.effective_localpref a.attrs)
    in
    if c <> 0 then c
    else
      (* 2. shorter AS path *)
      let c = compare (Aspath.length a.attrs.aspath) (Aspath.length b.attrs.aspath) in
      if c <> 0 then c
      else
        (* 3. lowest origin *)
        let c =
          compare
            (Bgp_types.origin_rank a.attrs.origin)
            (Bgp_types.origin_rank b.attrs.origin)
        in
        if c <> 0 then c
        else
          (* 4. lowest MED, comparable only within one neighbour AS *)
          let c =
            match Aspath.first_as a.attrs.aspath, Aspath.first_as b.attrs.aspath with
            | Some x, Some y when x = y ->
              compare
                (Option.value a.attrs.med ~default:0)
                (Option.value b.attrs.med ~default:0)
            | _ -> 0
          in
          if c <> 0 then c
          else
            (* 5. EBGP-learned over IBGP-learned *)
            let rank_kind (i : Bgp_types.peer_info) =
              match i.kind with Bgp_types.Ebgp -> 0 | Bgp_types.Ibgp -> 1
            in
            let c = compare (rank_kind ia) (rank_kind ib) in
            if c <> 0 then c
            else
              (* 6. lowest IGP metric to nexthop: hot-potato routing *)
              let metric r =
                Option.value r.Bgp_types.igp_metric ~default:max_int
              in
              let c = compare (metric a) (metric b) in
              if c <> 0 then c
              else
                (* 7. lowest BGP identifier *)
                let c = Ipv4.compare ia.peer_bgp_id ib.peer_bgp_id in
                if c <> 0 then c
                else
                  (* 8. lowest peer address *)
                  Ipv4.compare ia.peer_addr ib.peer_addr
  in
  cmp < 0

class decision_table ~name () =
  object (self)
    inherit Bgp_table.base name
    val h_add = Telemetry.histogram ("bgp." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("bgp." ^ name ^ ".delete_us")
    val mutable parents : (int * Bgp_table.table) list = []
    val infos : (int, Bgp_types.peer_info) Hashtbl.t = Hashtbl.create 16
    val winners : Bgp_types.route Ptree.t = Ptree.create ()

    method add_parent ~(info : Bgp_types.peer_info) (tbl : Bgp_table.table) =
      parents <- (info.peer_id, tbl) :: parents;
      Hashtbl.replace infos info.peer_id info

    method remove_parent peer_id =
      parents <- List.filter (fun (id, _) -> id <> peer_id) parents;
      Hashtbl.remove infos peer_id

    method peer_info peer_id = Hashtbl.find_opt infos peer_id
    method parent_count = List.length parents
    method winner_count = Ptree.size winners

    method private best net =
      List.fold_left
        (fun best (peer_id, tbl) ->
           match tbl#lookup_route net with
           | Some r when r.Bgp_types.igp_metric <> None ->
             (* unresolved routes are invisible to Decision *)
             (match Hashtbl.find_opt infos peer_id with
              | None -> best
              | Some info ->
                (match best with
                 | None -> Some (r, info)
                 | Some (br, bi) ->
                   if better r info br bi then Some (r, info) else best))
           | _ -> best)
        None parents

    method private reevaluate net =
      let winner = Option.map fst (self#best net) in
      let old = Ptree.find winners net in
      match old, winner with
      | None, None -> ()
      | Some o, Some w when Bgp_types.route_equal o w -> ()
      | None, Some w ->
        ignore (Ptree.insert winners net w);
        self#push_add w
      | Some o, None ->
        ignore (Ptree.remove winners net);
        self#push_delete o
      | Some o, Some w ->
        ignore (Ptree.insert winners net w);
        self#push_delete o;
        self#push_add w

    method add_route r =
      Telemetry.time h_add (fun () -> self#reevaluate r.Bgp_types.net)

    method delete_route r =
      Telemetry.time h_del (fun () -> self#reevaluate r.Bgp_types.net)
    method lookup_route net = Ptree.find winners net

    method fold_winners
      : 'acc. (Bgp_types.route -> 'acc -> 'acc) -> 'acc -> 'acc =
      fun f init -> Ptree.fold (fun _ r acc -> f r acc) winners init

    method winners_iter = Ptree.Safe_iter.start winners
  end

(* --- sharded decision (multicore pipeline) --------------------------- *)

(* The reading surface Bgp_process needs from "the decision stage",
   satisfied both by the classic pull-based decision_table above and by
   the shard_mirror below. Keeping the surface narrow is what lets the
   sharded and single-domain pipelines share every other stage. *)
class type view = object
  method tbl_name : string
  method add_route : Bgp_types.route -> unit
  method delete_route : Bgp_types.route -> unit
  method lookup_route : Ipv4net.t -> Bgp_types.route option
  method set_next : Bgp_table.table option -> unit
  method add_parent : info:Bgp_types.peer_info -> Bgp_table.table -> unit
  method remove_parent : int -> unit
  method peer_info : int -> Bgp_types.peer_info option
  method parent_count : int
  method winner_count : int
  method fold_winners : 'acc. (Bgp_types.route -> 'acc -> 'acc) -> 'acc -> 'acc
  method winners_iter : Bgp_types.route Ptree.Safe_iter.it
end

(* Operations the sharded decision stage sends to its shard pool. Route
   ops are owner-routed by prefix; peer metadata is broadcast, since
   every shard may hold candidates from every peer. *)
type shard_op =
  | Shard_add of Bgp_types.route
  | Shard_delete of Bgp_types.route
  | Shard_peer of Bgp_types.peer_info     (* peer branch attached *)
  | Shard_peer_gone of int                (* peer branch detached *)

(* Stands where decision_table stands when the decision computation
   runs on shard-worker domains instead. Inbound route ops are
   forwarded to the pool via [dispatch] (tagged with the ambient lane);
   winner deltas coming back are applied with [apply_winner], which
   maintains the local winner mirror — the duplicated state serving
   lookups, winner dumps and the fanout — and pushes the delta
   downstream to the fanout under the delta's lane. *)
class shard_mirror ~name
    ~(dispatch : lane:Laneq.lane -> shard_op -> unit) () =
  object (self)
    inherit Bgp_table.base name
    val h_add = Telemetry.histogram ("bgp." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("bgp." ^ name ^ ".delete_us")
    val infos : (int, Bgp_types.peer_info) Hashtbl.t = Hashtbl.create 16
    val winners : Bgp_types.route Ptree.t = Ptree.create ()
    val mutable parent_count = 0

    method add_parent ~(info : Bgp_types.peer_info) (_ : Bgp_table.table) =
      parent_count <- parent_count + 1;
      Hashtbl.replace infos info.peer_id info;
      dispatch ~lane:(Bgp_types.current_lane ()) (Shard_peer info)

    method remove_parent peer_id =
      parent_count <- parent_count - 1;
      Hashtbl.remove infos peer_id;
      dispatch ~lane:(Bgp_types.current_lane ()) (Shard_peer_gone peer_id)

    method peer_info peer_id = Hashtbl.find_opt infos peer_id
    method parent_count = parent_count
    method winner_count = Ptree.size winners

    method add_route r =
      Telemetry.time h_add (fun () ->
          dispatch ~lane:(Bgp_types.current_lane ()) (Shard_add r))

    method delete_route r =
      Telemetry.time h_del (fun () ->
          dispatch ~lane:(Bgp_types.current_lane ()) (Shard_delete r))

    method lookup_route net = Ptree.find winners net

    method fold_winners
      : 'acc. (Bgp_types.route -> 'acc -> 'acc) -> 'acc -> 'acc =
      fun f init -> Ptree.fold (fun _ r acc -> f r acc) winners init

    method winners_iter = Ptree.Safe_iter.start winners

    (* Winner delta computed by the owning shard. Diffing against the
       mirror (rather than trusting a carried old value) makes
       re-application after a replay idempotent. *)
    method apply_winner ~(lane : Laneq.lane) net
        (now : Bgp_types.route option) =
      let old = Ptree.find winners net in
      let push f r = Bgp_types.with_lane lane (fun () -> f r) in
      match old, now with
      | None, None -> ()
      | Some o, Some w when Bgp_types.route_equal o w -> ()
      | None, Some w ->
        ignore (Ptree.insert winners net w);
        push self#push_add w
      | Some o, None ->
        ignore (Ptree.remove winners net);
        push self#push_delete o
      | Some o, Some w ->
        ignore (Ptree.insert winners net w);
        push self#push_delete o;
        push self#push_add w
  end
