(* Nexthop-resolver stages (paper §5.1.1, Figure 5).

   BGP must know whether each route's nexthop is reachable and at what
   IGP metric ("hot potato" routing needs the metric to the nearest
   exit). The resolver talks asynchronously to the RIB: routes are held
   in a queue until the relevant nexthop metrics arrive, "avoiding the
   need for the Decision Process to wait on asynchronous operations".

   Answers come with the validity subnet of §5.2.1 (the largest
   enclosing subnet with a uniform answer), which we cache; since
   returned subnets never overlap, a longest-match lookup in the cache
   is authoritative. When the RIB invalidates a subnet, affected
   nexthops are re-queried and any routes whose annotation changes are
   re-issued downstream as delete+add. *)

type answer = { resolvable : bool; metric : int; valid : Ipv4net.t }

type resolve_fn = Ipv4.t -> (answer -> unit) -> unit

class nexthop_table ~name ~(resolve : resolve_fn) () =
  object (self)
    inherit Bgp_table.base name
    val cache : (bool * int) Ptree.t = Ptree.create ()
    val store : Bgp_types.route Ptree.t = Ptree.create ()
    val pending : (int, Bgp_types.route list ref) Hashtbl.t = Hashtbl.create 16
    (* nexthop -> set of nets currently in [store] with that nexthop.
       An inner hashtable: many thousands of routes can share one
       nexthop, so membership must not be a list scan. *)
    val nh_index : (int, (Ipv4net.t, unit) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 16

    method pending_count =
      Hashtbl.fold (fun _ l acc -> acc + List.length !l) pending 0

    method cache_size = Ptree.size cache

    method private annotate_and_emit (r : Bgp_types.route) resolvable metric =
      let r' =
        { r with
          Bgp_types.igp_metric = (if resolvable then Some metric else None) }
      in
      let nh_key = Ipv4.to_int r.Bgp_types.attrs.Bgp_types.nexthop in
      (match Ptree.insert store r'.Bgp_types.net r' with
       | Some old ->
         (* Shouldn't normally happen (upstream replaces send delete
            first), but keep the stream consistent if it does. *)
         self#push_delete old
       | None -> ());
      (match Hashtbl.find_opt nh_index nh_key with
       | Some set -> Hashtbl.replace set r'.Bgp_types.net ()
       | None ->
         let set = Hashtbl.create 64 in
         Hashtbl.replace set r'.Bgp_types.net ();
         Hashtbl.replace nh_index nh_key set);
      self#push_add r'

    method private got_answer nh (a : answer) =
      ignore (Ptree.insert cache a.valid (a.resolvable, a.metric));
      match Hashtbl.find_opt pending (Ipv4.to_int nh) with
      | Some l ->
        let routes = List.rev !l in
        Hashtbl.remove pending (Ipv4.to_int nh);
        List.iter
          (fun r -> self#annotate_and_emit r a.resolvable a.metric)
          routes
      | None -> ()

    method add_route r =
      let nh = r.Bgp_types.attrs.Bgp_types.nexthop in
      match Ptree.longest_match cache nh with
      | Some (_, (resolvable, metric)) ->
        self#annotate_and_emit r resolvable metric
      | None ->
        (match Hashtbl.find_opt pending (Ipv4.to_int nh) with
         | Some l -> l := r :: !l
         | None ->
           Hashtbl.replace pending (Ipv4.to_int nh) (ref [ r ]);
           resolve nh (fun a -> self#got_answer nh a))

    method delete_route r =
      let net = r.Bgp_types.net in
      let nh_key = Ipv4.to_int r.Bgp_types.attrs.Bgp_types.nexthop in
      (* Was it still waiting for resolution? *)
      match Hashtbl.find_opt pending nh_key with
      | Some l when List.exists (fun p -> Ipv4net.equal p.Bgp_types.net net) !l
        ->
        l := List.filter (fun p -> not (Ipv4net.equal p.Bgp_types.net net)) !l
      | _ ->
        (match Ptree.remove store net with
         | Some stored ->
           (match Hashtbl.find_opt nh_index nh_key with
            | Some set ->
              Hashtbl.remove set net;
              if Hashtbl.length set = 0 then Hashtbl.remove nh_index nh_key
            | None -> ());
           self#push_delete stored
         | None -> ())

    method lookup_route net = Ptree.find store net

    (* The RIB invalidated its answer for [subnet]: drop covered cache
       entries, re-query affected nexthops and re-issue any routes
       whose annotation changed. *)
    method invalidate (subnet : Ipv4net.t) =
      let stale =
        Ptree.fold_within cache subnet (fun k _ acc -> k :: acc) []
      in
      List.iter (fun k -> ignore (Ptree.remove cache k)) stale;
      let affected =
        Hashtbl.fold
          (fun key _ acc ->
             if Ipv4net.contains_addr subnet (Ipv4.of_int key) then
               Ipv4.of_int key :: acc
             else acc)
          nh_index []
      in
      List.iter
        (fun nh ->
           resolve nh (fun a ->
               ignore (Ptree.insert cache a.valid (a.resolvable, a.metric));
               match Hashtbl.find_opt nh_index (Ipv4.to_int nh) with
               | None -> ()
               | Some nets ->
                 Hashtbl.iter
                   (fun net () ->
                      match Ptree.find store net with
                      | Some stored ->
                        let igp =
                          if a.resolvable then Some a.metric else None
                        in
                        if stored.Bgp_types.igp_metric <> igp then begin
                          let updated =
                            { stored with Bgp_types.igp_metric = igp }
                          in
                          ignore (Ptree.insert store net updated);
                          self#push_delete stored;
                          self#push_add updated
                        end
                      | None -> ())
                   nets))
        affected
  end
