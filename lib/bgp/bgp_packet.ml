type msg =
  | Open of { version : int; my_as : int; hold_time : int; bgp_id : Ipv4.t }
  | Update of {
      withdrawn : Ipv4net.t list;
      attrs : Bgp_types.attrs option;
      nlri : Ipv4net.t list;
    }
  | Notification of { code : int; subcode : int; data : string }
  | Keepalive

let max_message_size = 4096
let header_size = 19
let ty_open = 1
let ty_update = 2
let ty_notification = 3
let ty_keepalive = 4

let err_msg_header = 1
let err_open = 2
let err_update = 3
let err_hold_timer = 4
let err_fsm = 5
let err_cease = 6

let as_trans = 23456
let cap_param_type = 2
let cap_as4 = 65

(* --- prefix encoding ------------------------------------------------- *)

let encode_prefix w net =
  let len = Ipv4net.prefix_len net in
  let nbytes = (len + 7) / 8 in
  Wire.W.u8 w len;
  let v = Ipv4.to_int (Ipv4net.network net) in
  for i = 0 to nbytes - 1 do
    Wire.W.u8 w ((v lsr (8 * (3 - i))) land 0xFF)
  done

let decode_prefix r =
  let len = Wire.R.u8 r in
  if len > 32 then failwith (Printf.sprintf "bad prefix length %d" len);
  let nbytes = (len + 7) / 8 in
  let v = ref 0 in
  for i = 0 to nbytes - 1 do
    v := !v lor (Wire.R.u8 r lsl (8 * (3 - i)))
  done;
  Ipv4net.make (Ipv4.of_int !v) len

let rec decode_prefixes r acc =
  if Wire.R.eof r then List.rev acc
  else decode_prefixes r (decode_prefix r :: acc)

(* --- path attributes -------------------------------------------------- *)

let flag_optional = 0x80
let flag_transitive = 0x40
let flag_extlen = 0x10

let at_origin = 1
let at_aspath = 2
let at_nexthop = 3
let at_med = 4
let at_localpref = 5
let at_atomic = 6
let at_community = 8

let encode_attr w ~flags ~ty body =
  let blen = String.length body in
  if blen > 255 then begin
    Wire.W.u8 w (flags lor flag_extlen);
    Wire.W.u8 w ty;
    Wire.W.u16 w blen
  end
  else begin
    Wire.W.u8 w flags;
    Wire.W.u8 w ty;
    Wire.W.u8 w blen
  end;
  Wire.W.bytes w body

let body f =
  let w = Wire.W.create () in
  f w;
  Wire.W.contents w

let encode_attrs w (a : Bgp_types.attrs) =
  encode_attr w ~flags:flag_transitive ~ty:at_origin
    (body (fun w -> Wire.W.u8 w (Bgp_types.origin_rank a.origin)));
  encode_attr w ~flags:flag_transitive ~ty:at_aspath
    (body (fun w -> Aspath.encode w a.aspath));
  encode_attr w ~flags:flag_transitive ~ty:at_nexthop
    (body (fun w -> Wire.W.ipv4 w a.nexthop));
  (match a.med with
   | Some med ->
     encode_attr w ~flags:flag_optional ~ty:at_med
       (body (fun w -> Wire.W.u32 w med))
   | None -> ());
  (match a.localpref with
   | Some lp ->
     encode_attr w ~flags:flag_transitive ~ty:at_localpref
       (body (fun w -> Wire.W.u32 w lp))
   | None -> ());
  if a.atomic_aggregate then
    encode_attr w ~flags:flag_transitive ~ty:at_atomic "";
  match a.communities with
  | [] -> ()
  | comms ->
    encode_attr w
      ~flags:(flag_optional lor flag_transitive)
      ~ty:at_community
      (body (fun w -> List.iter (Wire.W.u32 w) comms))

let decode_attrs r : Bgp_types.attrs =
  let origin = ref None in
  let aspath = ref None in
  let nexthop = ref None in
  let med = ref None in
  let localpref = ref None in
  let communities = ref [] in
  let atomic = ref false in
  while not (Wire.R.eof r) do
    let flags = Wire.R.u8 r in
    let ty = Wire.R.u8 r in
    let len =
      if flags land flag_extlen <> 0 then Wire.R.u16 r else Wire.R.u8 r
    in
    let br = Wire.R.sub r len in
    if ty = at_origin then begin
      match Wire.R.u8 br with
      | 0 -> origin := Some Bgp_types.IGP
      | 1 -> origin := Some Bgp_types.EGP
      | 2 -> origin := Some Bgp_types.INCOMPLETE
      | v -> failwith (Printf.sprintf "bad ORIGIN %d" v)
    end
    else if ty = at_aspath then aspath := Some (Aspath.decode br)
    else if ty = at_nexthop then nexthop := Some (Wire.R.ipv4 br)
    else if ty = at_med then med := Some (Wire.R.u32 br)
    else if ty = at_localpref then localpref := Some (Wire.R.u32 br)
    else if ty = at_atomic then atomic := true
    else if ty = at_community then begin
      let n = len / 4 in
      communities := List.init n (fun _ -> Wire.R.u32 br)
    end
    else if flags land flag_optional = 0 then
      failwith (Printf.sprintf "unrecognized well-known attribute %d" ty)
    (* unknown optional attributes are skipped (already consumed) *)
  done;
  match !origin, !aspath, !nexthop with
  | Some origin, Some aspath, Some nexthop ->
    { Bgp_types.origin; aspath; nexthop; med = !med; localpref = !localpref;
      communities = !communities; atomic_aggregate = !atomic }
  | _ -> failwith "missing mandatory attribute"

(* --- messages ---------------------------------------------------------- *)

let encode msg =
  let w = Wire.W.create ~initial:64 () in
  for _ = 1 to 16 do Wire.W.u8 w 0xFF done;
  Wire.W.u16 w 0; (* patched below *)
  (match msg with
   | Open { version; my_as; hold_time; bgp_id } ->
     Wire.W.u8 w ty_open;
     Wire.W.u8 w version;
     Wire.W.u16 w (if my_as > 0xFFFF then as_trans else my_as);
     Wire.W.u16 w hold_time;
     Wire.W.ipv4 w bgp_id;
     (* One optional parameter: the 4-octet-AS capability (RFC 6793),
        carrying the real AS number. *)
     Wire.W.u8 w 8; (* opt params length *)
     Wire.W.u8 w cap_param_type;
     Wire.W.u8 w 6;
     Wire.W.u8 w cap_as4;
     Wire.W.u8 w 4;
     Wire.W.u32 w my_as
   | Update { withdrawn; attrs; nlri } ->
     Wire.W.u8 w ty_update;
     let wbody = body (fun w -> List.iter (encode_prefix w) withdrawn) in
     Wire.W.u16 w (String.length wbody);
     Wire.W.bytes w wbody;
     let abody =
       match attrs with
       | Some a -> body (fun w -> encode_attrs w a)
       | None -> ""
     in
     Wire.W.u16 w (String.length abody);
     Wire.W.bytes w abody;
     List.iter (encode_prefix w) nlri
   | Notification { code; subcode; data } ->
     Wire.W.u8 w ty_notification;
     Wire.W.u8 w code;
     Wire.W.u8 w subcode;
     Wire.W.bytes w data
   | Keepalive -> Wire.W.u8 w ty_keepalive);
  let len = Wire.W.length w in
  if len > max_message_size then
    invalid_arg (Printf.sprintf "Bgp_packet.encode: %d bytes" len);
  Wire.W.patch_u16 w 16 len;
  Wire.W.contents w

let decode_body ty r =
  if ty = ty_open then begin
    let version = Wire.R.u8 r in
    let as16 = Wire.R.u16 r in
    let hold_time = Wire.R.u16 r in
    let bgp_id = Wire.R.ipv4 r in
    let optlen = Wire.R.u8 r in
    let opts = Wire.R.sub r optlen in
    (* Scan optional parameters for the AS4 capability. *)
    let my_as = ref as16 in
    while not (Wire.R.eof opts) do
      let pty = Wire.R.u8 opts in
      let plen = Wire.R.u8 opts in
      let pr = Wire.R.sub opts plen in
      if pty = cap_param_type then
        while not (Wire.R.eof pr) do
          let code = Wire.R.u8 pr in
          let clen = Wire.R.u8 pr in
          let cr = Wire.R.sub pr clen in
          if code = cap_as4 && clen = 4 then my_as := Wire.R.u32 cr
        done
    done;
    Open { version; my_as = !my_as; hold_time; bgp_id }
  end
  else if ty = ty_update then begin
    let wlen = Wire.R.u16 r in
    let withdrawn = decode_prefixes (Wire.R.sub r wlen) [] in
    let alen = Wire.R.u16 r in
    let attrs =
      if alen = 0 then None else Some (decode_attrs (Wire.R.sub r alen))
    in
    let nlri = decode_prefixes r [] in
    if nlri <> [] && attrs = None then
      failwith "UPDATE with NLRI but no attributes";
    Update { withdrawn; attrs; nlri }
  end
  else if ty = ty_notification then begin
    let code = Wire.R.u8 r in
    let subcode = Wire.R.u8 r in
    let data = Wire.R.bytes r (Wire.R.remaining r) in
    Notification { code; subcode; data }
  end
  else if ty = ty_keepalive then Keepalive
  else failwith (Printf.sprintf "unknown message type %d" ty)

let decode s =
  try
    let r = Wire.R.of_string s in
    for _ = 1 to 16 do
      if Wire.R.u8 r <> 0xFF then failwith "bad marker"
    done;
    let len = Wire.R.u16 r in
    if len <> String.length s then failwith "length mismatch";
    let ty = Wire.R.u8 r in
    Ok (decode_body ty r)
  with
  | Failure msg -> Error msg
  | Wire.Truncated -> Error "truncated message"

let msg_to_string = function
  | Open { version; my_as; hold_time; bgp_id } ->
    Printf.sprintf "OPEN v%d as %d hold %d id %s" version my_as hold_time
      (Ipv4.to_string bgp_id)
  | Update { withdrawn; attrs; nlri } ->
    Printf.sprintf "UPDATE withdraw [%s] announce [%s]%s"
      (String.concat " " (List.map Ipv4net.to_string withdrawn))
      (String.concat " " (List.map Ipv4net.to_string nlri))
      (match attrs with
       | Some a -> " path [" ^ Aspath.to_string a.Bgp_types.aspath ^ "]"
       | None -> "")
  | Notification { code; subcode; _ } ->
    Printf.sprintf "NOTIFICATION %d/%d" code subcode
  | Keepalive -> "KEEPALIVE"

module Stream_parser = struct
  type t = { buf : Buffer.t; mutable poisoned : bool }

  let create () = { buf = Buffer.create 4096; poisoned = false }
  let buffered t = Buffer.length t.buf

  let feed t data =
    if t.poisoned then Error "parser poisoned by earlier framing error"
    else begin
      Buffer.add_string t.buf data;
      let contents = Buffer.contents t.buf in
      let total = String.length contents in
      let pos = ref 0 in
      let out = ref [] in
      let err = ref None in
      let continue = ref true in
      while !continue && !err = None do
        if total - !pos < header_size then continue := false
        else begin
          let marker_ok =
            let rec check i = i >= 16 || (contents.[!pos + i] = '\xFF' && check (i + 1)) in
            check 0
          in
          if not marker_ok then err := Some "bad marker"
          else begin
            let len =
              (Char.code contents.[!pos + 16] lsl 8)
              lor Char.code contents.[!pos + 17]
            in
            if len < header_size || len > max_message_size then
              err := Some (Printf.sprintf "bad length %d" len)
            else if total - !pos < len then continue := false
            else
              match decode (String.sub contents !pos len) with
              | Ok msg ->
                out := msg :: !out;
                pos := !pos + len
              | Error e -> err := Some e
          end
        end
      done;
      match !err with
      | Some e ->
        t.poisoned <- true;
        Error e
      | None ->
        Buffer.clear t.buf;
        Buffer.add_substring t.buf contents !pos (total - !pos);
        Ok (List.rev !out)
    end
end
