(* Route-aggregation stages.

   Another stage added to the pipeline after the fact, like the policy
   and damping stages of §8.3 — nothing upstream or downstream changes.
   Plumbed into a peer's output branch, the stage watches the winner
   stream for component routes inside each configured aggregate prefix:
   while at least one component exists, the aggregate is announced
   (with ATOMIC_AGGREGATE set and an empty AS path, as RFC 4271
   prescribes for path-information-losing aggregation); optionally the
   more-specific components are suppressed from this peer.

   The synthesized aggregate carries peer_id 0 (locally originated):
   output-branch rules treat it like a network statement. *)

type aggregate_config = {
  agg_net : Ipv4net.t;
  suppress_specifics : bool;
}

class aggregation_table ~name ~(aggregates : aggregate_config list)
    ~(local_nexthop : Ipv4.t) ~(parent : Bgp_table.table) () =
  object (self)
    inherit Bgp_table.base name

    (* Per aggregate: the set of component prefixes currently alive. *)
    val components : (Ipv4net.t, (Ipv4net.t, unit) Hashtbl.t) Hashtbl.t =
      (let h = Hashtbl.create 8 in
       List.iter
         (fun a -> Hashtbl.replace h a.agg_net (Hashtbl.create 16))
         aggregates;
       h)

    method private config_of (net : Ipv4net.t) =
      List.find_opt
        (fun a ->
           Ipv4net.contains a.agg_net net
           && Ipv4net.prefix_len a.agg_net < Ipv4net.prefix_len net)
        aggregates

    method private aggregate_route (agg : aggregate_config) =
      { Bgp_types.net = agg.agg_net;
        attrs =
          { (Bgp_types.default_attrs ~nexthop:local_nexthop) with
            Bgp_types.atomic_aggregate = true };
        peer_id = 0;
        igp_metric = Some 0 }

    method active (net : Ipv4net.t) =
      match Hashtbl.find_opt components net with
      | Some set -> Hashtbl.length set > 0
      | None -> false

    method add_route r =
      match self#config_of r.Bgp_types.net with
      | None -> self#push_add r
      | Some agg ->
        let set = Hashtbl.find components agg.agg_net in
        let was_empty = Hashtbl.length set = 0 in
        Hashtbl.replace set r.Bgp_types.net ();
        if was_empty then self#push_add (self#aggregate_route agg);
        if not agg.suppress_specifics then self#push_add r

    method delete_route r =
      match self#config_of r.Bgp_types.net with
      | None -> self#push_delete r
      | Some agg ->
        let set = Hashtbl.find components agg.agg_net in
        let existed = Hashtbl.mem set r.Bgp_types.net in
        Hashtbl.remove set r.Bgp_types.net;
        if not agg.suppress_specifics then self#push_delete r;
        if existed && Hashtbl.length set = 0 then
          self#push_delete (self#aggregate_route agg)

    method lookup_route net =
      match
        List.find_opt (fun a -> Ipv4net.equal a.agg_net net) aggregates
      with
      | Some agg when self#active agg.agg_net ->
        Some (self#aggregate_route agg)
      | _ ->
        (match self#config_of net with
         | Some agg when agg.suppress_specifics -> None
         | _ -> parent#lookup_route net)
  end
