(** BGP-4 wire codec (RFC 4271 message formats).

    Messages carry the standard 19-byte header (16-byte all-ones
    marker, 2-byte length, 1-byte type). Path attributes implemented:
    ORIGIN, AS_PATH (4-byte AS numbers), NEXT_HOP, MULTI_EXIT_DISC,
    LOCAL_PREF, ATOMIC_AGGREGATE, COMMUNITY. NLRI and withdrawn routes
    use standard variable-length prefix encoding. *)

type msg =
  | Open of { version : int; my_as : int; hold_time : int; bgp_id : Ipv4.t }
  | Update of {
      withdrawn : Ipv4net.t list;
      attrs : Bgp_types.attrs option; (** [None] iff NLRI is empty. *)
      nlri : Ipv4net.t list;
    }
  | Notification of { code : int; subcode : int; data : string }
  | Keepalive

val encode : msg -> string
(** Complete message including header.
    @raise Invalid_argument if the message exceeds 4096 bytes. *)

val decode : string -> (msg, string) result
(** Decode exactly one complete message. *)

val msg_to_string : msg -> string

val max_message_size : int
(** 4096, per RFC 4271. *)

(** Incremental parser for a TCP byte stream. *)
module Stream_parser : sig
  type t

  val create : unit -> t

  val feed : t -> string -> (msg list, string) result
  (** Append bytes; return every complete message now available. An
      [Error] (bad marker, bad length, undecodable body) poisons the
      parser — the session must be torn down, as with a real
      NOTIFICATION-worthy framing error. *)

  val buffered : t -> int
end

(** {1 Notification codes used here} *)

val err_msg_header : int
val err_open : int
val err_update : int
val err_hold_timer : int
val err_fsm : int
val err_cease : int
