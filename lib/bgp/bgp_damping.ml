(* Route-flap damping stage (RFC 2439 style; paper §8.3 "Adding Route
   Flap Damping to BGP" — added late, as just another pipeline stage,
   without touching its neighbours).

   Per-prefix exponential-decay penalty: withdrawals and
   re-advertisements add penalty; when it exceeds the suppress
   threshold the prefix is suppressed — further announcements are held
   rather than propagated — until decay brings the penalty below the
   reuse threshold, at which point the held route (if any) is
   announced. An upstream attribute change arrives as delete+add and
   collects both the withdrawal and re-advertisement penalties, a
   simplification that is slightly harsher than RFC 2439's
   attribute-change penalty but preserves the suppress/reuse shape. *)

type params = {
  half_life : float;            (* seconds *)
  suppress_threshold : float;
  reuse_threshold : float;
  max_penalty : float;
  withdrawal_penalty : float;
  readvertisement_penalty : float;
}

let default_params =
  { half_life = 900.0; suppress_threshold = 3000.0; reuse_threshold = 750.0;
    max_penalty = 16000.0; withdrawal_penalty = 1000.0;
    readvertisement_penalty = 500.0 }

type entry = {
  mutable penalty : float;
  mutable stamp : float;                      (* last decay time *)
  mutable suppressed : bool;
  mutable announced : Bgp_types.route option; (* downstream view *)
  mutable held : Bgp_types.route option;      (* suppressed update *)
  mutable reuse_timer : Eventloop.timer option;
  mutable seen_before : bool;
}

class damping_table ~name ?(params = default_params)
    ~(parent : Bgp_table.table) (loop : Eventloop.t) =
  object (self)
    inherit Bgp_table.base name
    val state : entry Ptree.t = Ptree.create ()
    val mutable suppress_count = 0

    method suppressed_count = suppress_count

    method private entry net =
      match Ptree.find state net with
      | Some e -> e
      | None ->
        let e =
          { penalty = 0.0; stamp = Eventloop.now loop; suppressed = false;
            announced = None; held = None; reuse_timer = None;
            seen_before = false }
        in
        ignore (Ptree.insert state net e);
        e

    method private decay e =
      let now = Eventloop.now loop in
      let dt = now -. e.stamp in
      if dt > 0.0 then begin
        e.penalty <- e.penalty *. (2.0 ** (-.dt /. params.half_life));
        e.stamp <- now
      end

    method private bump e amount =
      self#decay e;
      e.penalty <- min params.max_penalty (e.penalty +. amount)

    method private maybe_forget net e =
      if
        e.penalty < params.reuse_threshold /. 2.0
        && (not e.suppressed) && e.held = None && e.announced = None
      then begin
        Option.iter Eventloop.cancel e.reuse_timer;
        ignore (Ptree.remove state net)
      end

    (* Schedule the reuse check for when the penalty will have decayed
       to the reuse threshold. *)
    method private schedule_reuse net e =
      Option.iter Eventloop.cancel e.reuse_timer;
      self#decay e;
      let ratio = e.penalty /. params.reuse_threshold in
      let delay =
        if ratio <= 1.0 then 0.0
        else params.half_life *. (Float.log ratio /. Float.log 2.0)
      in
      e.reuse_timer <-
        Some
          (Eventloop.after loop (max delay 0.001) (fun () ->
               self#reuse_check net e))

    method private reuse_check net e =
      self#decay e;
      if e.penalty <= params.reuse_threshold then begin
        e.suppressed <- false;
        e.reuse_timer <- None;
        (match e.held with
         | Some r ->
           e.held <- None;
           e.announced <- Some r;
           self#push_add r
         | None -> ());
        self#maybe_forget net e
      end
      else self#schedule_reuse net e

    method add_route r =
      let net = r.Bgp_types.net in
      let e = self#entry net in
      if e.seen_before then self#bump e params.readvertisement_penalty
      else begin
        self#decay e;
        e.seen_before <- true
      end;
      if e.suppressed || e.penalty >= params.suppress_threshold then begin
        if not e.suppressed then begin
          e.suppressed <- true;
          suppress_count <- suppress_count + 1
        end;
        (* Suppression withdraws whatever the peer branch currently
           advertises downstream and holds the update. *)
        (match e.announced with
         | Some old ->
           e.announced <- None;
           self#push_delete old
         | None -> ());
        e.held <- Some r;
        self#schedule_reuse net e
      end
      else begin
        e.announced <- Some r;
        e.held <- None;
        self#push_add r
      end

    method delete_route r =
      let net = r.Bgp_types.net in
      let e = self#entry net in
      self#bump e params.withdrawal_penalty;
      e.held <- None;
      (match e.announced with
       | Some old ->
         e.announced <- None;
         self#push_delete old
       | None -> ());
      if e.penalty >= params.suppress_threshold && not e.suppressed then begin
        e.suppressed <- true;
        suppress_count <- suppress_count + 1;
        self#schedule_reuse net e
      end;
      self#maybe_forget net e

    (* The downstream view is what we announced, not what the parent
       currently holds. *)
    method lookup_route net =
      match Ptree.find state net with
      | Some e -> e.announced
      | None -> parent#lookup_route net

    method penalty_of net =
      match Ptree.find state net with
      | Some e ->
        self#decay e;
        Some e.penalty
      | None -> None

    method is_suppressed net =
      match Ptree.find state net with
      | Some e -> e.suppressed
      | None -> false
  end
