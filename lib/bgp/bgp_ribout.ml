(* PeerOut stages (RibOut): the tail of each output branch (Figure 5).

   Maintains the Adj-RIB-Out (what this peer has been told), applies
   the standard per-session-type attribute rules, batches changes, and
   packs them into UPDATE messages:

   - EBGP: prepend the local AS, set nexthop to our session address,
     strip LOCAL_PREF and MED, and drop routes whose AS path already
     contains the peer's AS (loop prevention becomes a withdrawal if
     the prefix was previously advertised).
   - IBGP: attributes pass unchanged, with LOCAL_PREF made explicit.

   Batching: changes accumulate and are flushed in one deferred event;
   withdrawals are packed together and announcements are grouped by
   identical attributes, honouring the 4096-byte message limit. *)

let max_prefixes_per_update = 700

type change = Announce of Bgp_types.route | Withdraw of Ipv4net.t

class rib_out ~name ~(info : Bgp_types.peer_info) ~(local_as : int)
    ~(local_addr : Ipv4.t) ~(send : Bgp_packet.msg -> bool)
    (loop : Eventloop.t) =
  object (self)
    inherit Bgp_table.base name
    val h_add = Telemetry.histogram ("bgp." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("bgp." ^ name ^ ".delete_us")
    val adv : Bgp_types.route Ptree.t = Ptree.create () (* Adj-RIB-Out *)
    val pending : change Queue.t = Queue.create ()
    val mutable flush_scheduled = false
    val mutable updates_built = 0

    method advertised_count = Ptree.size adv
    method updates_built = updates_built
    method advertised net = Ptree.find adv net

    method private transform (r : Bgp_types.route) : Bgp_types.route option =
      let a = r.Bgp_types.attrs in
      match info.kind with
      | Bgp_types.Ebgp ->
        if Aspath.contains a.aspath info.peer_as then None
        else
          Some
            { r with
              Bgp_types.attrs =
                { a with
                  Bgp_types.aspath = Aspath.prepend local_as a.aspath;
                  nexthop = local_addr;
                  localpref = None;
                  med = None } }
      | Bgp_types.Ibgp ->
        Some
          { r with
            Bgp_types.attrs =
              { a with
                Bgp_types.localpref =
                  Some (Bgp_types.effective_localpref a) } }

    method private schedule_flush =
      if not flush_scheduled then begin
        flush_scheduled <- true;
        Eventloop.defer loop (fun () ->
            flush_scheduled <- false;
            self#flush)
      end

    method add_route r =
      Telemetry.time h_add @@ fun () ->
      (match self#transform r with
       | Some r' ->
         ignore (Ptree.insert adv r'.Bgp_types.net r');
         Queue.push (Announce r') pending
       | None ->
         (* Transform dropped it; withdraw any previous advertisement. *)
         (match Ptree.remove adv r.Bgp_types.net with
          | Some _ -> Queue.push (Withdraw r.Bgp_types.net) pending
          | None -> ()));
      self#schedule_flush

    method delete_route r =
      Telemetry.time h_del @@ fun () ->
      match Ptree.remove adv r.Bgp_types.net with
      | Some _ ->
        Queue.push (Withdraw r.Bgp_types.net) pending;
        self#schedule_flush
      | None -> () (* never advertised (filtered/transform-dropped) *)

    method lookup_route net = Ptree.find adv net

    method private flush =
      (* Net effect per prefix: the last change wins. *)
      let final : (Ipv4net.t, change) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] in
      Queue.iter
        (fun ch ->
           let net =
             match ch with
             | Announce r -> r.Bgp_types.net
             | Withdraw net -> net
           in
           if not (Hashtbl.mem final net) then order := net :: !order;
           Hashtbl.replace final net ch)
        pending;
      Queue.clear pending;
      let withdrawals = ref [] in
      let announces = ref [] in (* (attrs, nets ref) groups *)
      List.iter
        (fun net ->
           match Hashtbl.find final net with
           | Withdraw net -> withdrawals := net :: !withdrawals
           | Announce r ->
             let a = r.Bgp_types.attrs in
             (match
                List.find_opt
                  (fun (ga, _) -> Bgp_types.attrs_equal ga a)
                  !announces
              with
              | Some (_, nets) -> nets := r.Bgp_types.net :: !nets
              | None -> announces := (a, ref [ r.Bgp_types.net ]) :: !announces))
        (List.rev !order);
      let rec chunks l =
        if List.length l <= max_prefixes_per_update then [ l ]
        else
          let rec split n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | x :: rest -> split (n - 1) (x :: acc) rest
            | [] -> (List.rev acc, [])
          in
          let head, rest = split max_prefixes_per_update [] l in
          head :: chunks rest
      in
      if !withdrawals <> [] then
        List.iter
          (fun nets ->
             updates_built <- updates_built + 1;
             ignore
               (send
                  (Bgp_packet.Update { withdrawn = nets; attrs = None; nlri = [] })))
          (chunks (List.rev !withdrawals));
      List.iter
        (fun (attrs, nets) ->
           List.iter
             (fun nlri ->
                updates_built <- updates_built + 1;
                ignore
                  (send
                     (Bgp_packet.Update
                        { withdrawn = []; attrs = Some attrs; nlri })))
             (chunks (List.rev !nets)))
        (List.rev !announces)

    (* Session re-established: forget the Adj-RIB-Out (the peer lost
       everything) so the fresh dump starts clean. *)
    method session_reset =
      Ptree.clear adv;
      Queue.clear pending
  end
