(* PeerOut stages (RibOut): the tail of each output branch (Figure 5).

   Maintains the Adj-RIB-Out (what this peer has been told), applies
   the standard per-session-type attribute rules, batches changes, and
   packs them into UPDATE messages:

   - EBGP: prepend the local AS, set nexthop to our session address,
     strip LOCAL_PREF and MED, and drop routes whose AS path already
     contains the peer's AS (loop prevention becomes a withdrawal if
     the prefix was previously advertised).
   - IBGP: attributes pass unchanged, with LOCAL_PREF made explicit.

   Batching: changes accumulate and are flushed in bounded deferred
   slices; withdrawals are packed together and announcements are
   grouped by identical attributes, honouring the 4096-byte message
   limit.

   Lanes: pending changes ride the ambient urgent/bulk lane
   (Bgp_types.current_lane), so a flap propagating to this peer
   overtakes a table dump or bulk-load backlog still waiting in the
   bulk lane. Each flush drains the urgent lane dry, then a bounded
   bulk batch; the Laneq per-prefix guard keeps an urgent withdraw
   from overtaking a still-pending bulk announce of the same prefix
   (§5.1.2 across lanes). *)

let max_prefixes_per_update = 700

(* Bulk-lane changes drained per flush slice: bounds the dedup/group/
   pack work one loop turn spends on a single peer's output. *)
let bulk_flush_slice = 2048

type change = Announce of Bgp_types.route | Withdraw of Ipv4net.t

let change_net = function
  | Announce r -> r.Bgp_types.net
  | Withdraw net -> net

class rib_out ~name ~(info : Bgp_types.peer_info) ~(local_as : int)
    ~(local_addr : Ipv4.t) ~(send : Bgp_packet.msg -> bool)
    ?(ordered = true) (loop : Eventloop.t) =
  object (self)
    inherit Bgp_table.base name
    val h_add = Telemetry.histogram ("bgp." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("bgp." ^ name ^ ".delete_us")
    val adv : Bgp_types.route Ptree.t = Ptree.create () (* Adj-RIB-Out *)
    val pending : change Laneq.t = Laneq.create ~ordered ()
    val mutable flush_scheduled = false
    val mutable updates_built = 0

    method advertised_count = Ptree.size adv
    method updates_built = updates_built
    method advertised net = Ptree.find adv net

    method private transform (r : Bgp_types.route) : Bgp_types.route option =
      let a = r.Bgp_types.attrs in
      match info.kind with
      | Bgp_types.Ebgp ->
        if Aspath.contains a.aspath info.peer_as then None
        else
          Some
            { r with
              Bgp_types.attrs =
                { a with
                  Bgp_types.aspath = Aspath.prepend local_as a.aspath;
                  nexthop = local_addr;
                  localpref = None;
                  med = None } }
      | Bgp_types.Ibgp ->
        Some
          { r with
            Bgp_types.attrs =
              { a with
                Bgp_types.localpref =
                  Some (Bgp_types.effective_localpref a) } }

    method private schedule_flush =
      if not flush_scheduled then begin
        flush_scheduled <- true;
        Eventloop.defer loop (fun () ->
            flush_scheduled <- false;
            self#flush)
      end

    method private push_pending ch =
      Laneq.push pending (Bgp_types.current_lane ()) ~net:(change_net ch) ch

    method add_route r =
      Telemetry.time h_add @@ fun () ->
      (match self#transform r with
       | Some r' ->
         ignore (Ptree.insert adv r'.Bgp_types.net r');
         self#push_pending (Announce r')
       | None ->
         (* Transform dropped it; withdraw any previous advertisement. *)
         (match Ptree.remove adv r.Bgp_types.net with
          | Some _ -> self#push_pending (Withdraw r.Bgp_types.net)
          | None -> ()));
      self#schedule_flush

    method delete_route r =
      Telemetry.time h_del @@ fun () ->
      match Ptree.remove adv r.Bgp_types.net with
      | Some _ ->
        self#push_pending (Withdraw r.Bgp_types.net);
        self#schedule_flush
      | None -> () (* never advertised (filtered/transform-dropped) *)

    method lookup_route net = Ptree.find adv net

    method private flush =
      (* One slice: the urgent lane drained dry, then a bounded bulk
         batch. Leftover bulk re-defers, so one peer's huge output
         backlog cannot monopolise a loop turn. *)
      let drained = ref [] in
      let rec take_urgent () =
        match Laneq.pop_urgent pending with
        | Some (_, ch) ->
          drained := ch :: !drained;
          take_urgent ()
        | None -> ()
      in
      take_urgent ();
      let budget = ref bulk_flush_slice in
      let rec take_bulk () =
        if !budget > 0 then
          match Laneq.pop_bulk pending with
          | Some (_, ch) ->
            decr budget;
            drained := ch :: !drained;
            take_bulk ()
          | None -> ()
      in
      take_bulk ();
      (* Net effect per prefix within the slice: the last change wins.
         Safe across lanes because the Laneq guard preserves per-prefix
         push order, so "last in the slice" is "latest". *)
      let final : (Ipv4net.t, change) Hashtbl.t = Hashtbl.create 64 in
      let order = ref [] in
      List.iter
        (fun ch ->
           let net = change_net ch in
           if not (Hashtbl.mem final net) then order := net :: !order;
           Hashtbl.replace final net ch)
        (List.rev !drained);
      if not (Laneq.is_empty pending) then self#schedule_flush;
      let withdrawals = ref [] in
      let announces = ref [] in (* (attrs, nets ref) groups *)
      List.iter
        (fun net ->
           match Hashtbl.find final net with
           | Withdraw net -> withdrawals := net :: !withdrawals
           | Announce r ->
             let a = r.Bgp_types.attrs in
             (match
                List.find_opt
                  (fun (ga, _) -> Bgp_types.attrs_equal ga a)
                  !announces
              with
              | Some (_, nets) -> nets := r.Bgp_types.net :: !nets
              | None -> announces := (a, ref [ r.Bgp_types.net ]) :: !announces))
        (List.rev !order);
      let rec chunks l =
        if List.length l <= max_prefixes_per_update then [ l ]
        else
          let rec split n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | x :: rest -> split (n - 1) (x :: acc) rest
            | [] -> (List.rev acc, [])
          in
          let head, rest = split max_prefixes_per_update [] l in
          head :: chunks rest
      in
      if !withdrawals <> [] then
        List.iter
          (fun nets ->
             updates_built <- updates_built + 1;
             ignore
               (send
                  (Bgp_packet.Update { withdrawn = nets; attrs = None; nlri = [] })))
          (chunks (List.rev !withdrawals));
      List.iter
        (fun (attrs, nets) ->
           List.iter
             (fun nlri ->
                updates_built <- updates_built + 1;
                ignore
                  (send
                     (Bgp_packet.Update
                        { withdrawn = []; attrs = Some attrs; nlri })))
             (chunks (List.rev !nets)))
        (List.rev !announces)

    (* Session re-established: forget the Adj-RIB-Out (the peer lost
       everything) so the fresh dump starts clean. *)
    method session_reset =
      Ptree.clear adv;
      Laneq.clear pending

    method pending_length = Laneq.length pending
  end
