(* The BGP stage interface (paper §5.1, Figures 4–6).

   "There is no single routing table object, but rather a network of
   pluggable routing stages, each implementing the same interface."

   The three operations are exactly the paper's:
   - add_route: a preceding stage is sending a new route downstream;
   - delete_route: a preceding stage is withdrawing a route;
   - lookup_route: a later stage is asking upstream for the current
     route to a destination subnet.

   Consistency rules (§5.1): every delete must correspond to a previous
   add, and lookup answers must agree with the add/delete stream
   already sent downstream. Deletes are matched by (net, peer branch):
   attribute-modifying stages may be reconfigured between an add and
   the corresponding delete, so requiring byte-identical attributes
   would be unsatisfiable. The Cache_table checking stage enforces the
   net-level rules at runtime.

   Stages are replumbable at runtime — that is how dynamic deletion
   stages splice themselves in after a peering failure (§5.1.2) and
   remove themselves when their background work completes. *)

class type table = object
  method tbl_name : string
  method add_route : Bgp_types.route -> unit
  method delete_route : Bgp_types.route -> unit
  method lookup_route : Ipv4net.t -> Bgp_types.route option
  method set_next : table option -> unit
end

class virtual base (name : string) =
  object
    val mutable next : table option = None
    method tbl_name : string = name
    method set_next (n : table option) = next <- n
    method next_table = next

    method virtual add_route : Bgp_types.route -> unit
    method virtual delete_route : Bgp_types.route -> unit
    method virtual lookup_route : Ipv4net.t -> Bgp_types.route option

    method private push_add (r : Bgp_types.route) =
      match next with Some n -> n#add_route r | None -> ()

    method private push_delete (r : Bgp_types.route) =
      match next with Some n -> n#delete_route r | None -> ()
  end

let plumb (parent : #base) (child : #table) =
  parent#set_next (Some (child :> table))

(* Terminal sink handing updates to callbacks; lookups are answered by
   the upstream parent. *)
class sink ~name ~(parent : table) ~(on_add : Bgp_types.route -> unit)
    ~(on_delete : Bgp_types.route -> unit) =
  object
    inherit base name
    method add_route r = on_add r
    method delete_route r = on_delete r
    method lookup_route net = parent#lookup_route net
  end
