(* The consistency-checking cache stage (paper §5.1):

   "we have developed an extra consistency checking stage for
   debugging purposes. This cache stage, just after the outgoing filter
   bank in the output pipeline to each peer, has helped us discover
   many subtle bugs that would otherwise have gone undetected. While
   not intended for normal production use, this stage could aid with
   debugging if a consistency error is suspected."

   It shadows the stream flowing through it and records violations of
   the §5.1 consistency rules at the (net, peer) granularity:
   - a delete for a prefix that was never added;
   - a delete whose route disagrees with the cached add;
   - a lookup_route answer from upstream that disagrees with the
     add/delete stream already seen.
   Violations are recorded (and logged); traffic passes through
   unmodified either way. *)

let src = Logs.Src.create "xorp.bgp.cache" ~doc:"BGP consistency cache"

module Log = (val Logs.src_log src : Logs.LOG)

class cache_table ~name ~(parent : Bgp_table.table) () =
  object (self)
    inherit Bgp_table.base name
    val cache : Bgp_types.route Ptree.t = Ptree.create ()
    val mutable violations : string list = []

    method violations = List.rev violations
    method violation_count = List.length violations
    method cached_count = Ptree.size cache

    method private record msg =
      violations <- msg :: violations;
      Log.warn (fun m -> m "%s: consistency violation: %s" name msg)

    method add_route r =
      ignore (Ptree.insert cache r.Bgp_types.net r);
      self#push_add r

    method delete_route r =
      (match Ptree.remove cache r.Bgp_types.net with
       | None ->
         self#record
           (Printf.sprintf "delete for %s which was never added"
              (Ipv4net.to_string r.Bgp_types.net))
       | Some cached ->
         if cached.Bgp_types.peer_id <> r.Bgp_types.peer_id then
           self#record
             (Printf.sprintf "delete for %s from peer %d, but peer %d added it"
                (Ipv4net.to_string r.Bgp_types.net)
                r.Bgp_types.peer_id cached.Bgp_types.peer_id));
      self#push_delete r

    method lookup_route net =
      let upstream = parent#lookup_route net in
      (match upstream, Ptree.find cache net with
       | Some u, Some c ->
         if not (Bgp_types.route_equal u c) then
           self#record
             (Printf.sprintf
                "lookup for %s disagrees with stream (up %s vs seen %s)"
                (Ipv4net.to_string net)
                (Bgp_types.route_to_string u)
                (Bgp_types.route_to_string c))
       | Some u, None ->
         self#record
           (Printf.sprintf "lookup finds %s upstream but no add was streamed"
              (Bgp_types.route_to_string u))
       | None, Some c ->
         self#record
           (Printf.sprintf
              "lookup finds nothing upstream but %s was streamed"
              (Bgp_types.route_to_string c))
       | None, None -> ());
      upstream
  end
