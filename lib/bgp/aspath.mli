(** BGP AS paths (RFC 4271 §5.1.2, with 4-byte AS numbers throughout —
    we speak AS4-style paths natively rather than juggling AS_TRANS). *)

type segment =
  | Seq of int list  (** AS_SEQUENCE: ordered *)
  | Set of int list  (** AS_SET: unordered aggregate *)

type t = segment list

val empty : t

val length : t -> int
(** Decision-process path length: each sequence AS counts 1, each set
    counts 1 in total (RFC 4271 §9.1.2.2). *)

val prepend : int -> t -> t
(** Prepend one AS to the leftmost sequence (creating one if needed). *)

val prepend_n : int -> int -> t -> t
(** [prepend_n asn n path] prepends [asn] [n] times. *)

val contains : t -> int -> bool
(** Loop detection: does the path mention this AS anywhere? *)

val first_as : t -> int option
(** The neighbouring AS (leftmost AS of the leftmost sequence) — used
    for the MED comparability rule. *)

val origin_as : t -> int option
(** The rightmost AS: who originated the route. *)

val to_string : t -> string
(** e.g. ["1 2 3 {4,5}"]. *)

val equal : t -> t -> bool

val encode : Wire.W.t -> t -> unit
(** AS_PATH attribute body (without the attribute header). *)

val decode : Wire.R.t -> t
(** @raise Failure on malformed segments. *)
