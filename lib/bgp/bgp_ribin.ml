(* The PeerIn stage (RibIn): the only place original routes are stored
   (paper §5.1 — "we only store the original versions of routes, in
   the Peer In stages"). One per peering.

   On peering failure the whole table is handed to a dynamic deletion
   stage (see Bgp_deletion) and the PeerIn restarts empty, so the
   session can come straight back up. Repeated flaps stack deletion
   stages; the PeerIn tracks them so a completed stage can be spliced
   out of the chain wherever it sits. *)

class rib_in ~name ~(peer_id : int) (loop : Eventloop.t) =
  object (self)
    inherit Bgp_table.base name
    val h_add = Telemetry.histogram ("bgp." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("bgp." ^ name ^ ".delete_us")
    val mutable store : Bgp_types.route Ptree.t = Ptree.create ()
    val mutable deletions : Bgp_deletion.deletion_table list = []

    method peer_id = peer_id
    method route_count = Ptree.size store
    method active_deletion_stages = List.length deletions

    (* Entry points for the session side. *)
    method add_route (r : Bgp_types.route) =
      Telemetry.time h_add @@ fun () ->
      assert (r.Bgp_types.peer_id = peer_id);
      match Ptree.insert store r.Bgp_types.net r with
      | Some old ->
        (* Implicit replacement: withdraw-then-announce downstream. *)
        self#push_delete old;
        self#push_add r
      | None -> self#push_add r

    method delete_route (r : Bgp_types.route) =
      Telemetry.time h_del @@ fun () ->
      match Ptree.remove store r.Bgp_types.net with
      | Some old -> self#push_delete old
      | None -> () (* withdrawal of something never announced: ignore *)

    (* Downstream stages pull through the PeerIn, whose answer must
       include routes still awaiting background deletion (§5.1.2):
       "routes not yet deleted will still be returned by lookup_route
       until after the deletion stage has sent a delete_route
       downstream". Victim sets of stacked deletion stages are disjoint
       per prefix, so scan order does not matter. *)
    method lookup_route net =
      match Ptree.find store net with
      | Some _ as r -> r
      | None -> List.find_map (fun d -> d#find_victim net) deletions

    method fold : 'acc. (Bgp_types.route -> 'acc -> 'acc) -> 'acc -> 'acc =
      fun f init -> Ptree.fold (fun _ r acc -> f r acc) store init

    method safe_iter = Ptree.Safe_iter.start store

    (* Splice [del] out of the chain below us once it has finished. Its
       predecessor is either this PeerIn or a younger deletion stage. *)
    method private unplumb (del : Bgp_deletion.deletion_table) =
      let del_t = (del :> Bgp_table.table) in
      let same (n : Bgp_table.table option) =
        match n with Some n -> n == del_t | None -> false
      in
      if same next then next <- del#next_table
      else
        List.iter
          (fun (d : Bgp_deletion.deletion_table) ->
             if same d#next_table then d#set_next del#next_table)
          deletions;
      deletions <- List.filter (fun d -> not (d == del)) deletions

    method peering_went_down ?(slice = 100) () =
      if Ptree.size store > 0 then begin
        let victims = store in
        store <- Ptree.create ();
        let del =
          new Bgp_deletion.deletion_table
            ~name:(name ^ ":deletion") ~victims
            ~parent:(self :> Bgp_table.table)
            loop
        in
        del#set_next next;
        next <- Some (del :> Bgp_table.table);
        deletions <- del :: deletions;
        del#start ~slice ~on_complete:(fun () -> self#unplumb del) ()
      end
  end
