(** The BGP component: sessions, the staged pipeline of Figure 5, RIB
    interaction, and the [bgp/1.0] XRL interface.

    Per-peer input branch:
    {v PeerIn → [deletion stages]* → import filters → [damping] →
       nexthop resolver → Decision v}
    and output branch:
    {v Fanout reader → export filters → [checking cache] → PeerOut →
       session v}
    plus a RIB branch on the fanout that pushes winning routes to the
    ["rib"] component over XRLs (protocol ["ebgp"] or ["ibgp"]).

    Sessions run real RFC 4271 messages over {!Netsim} streams. Peering
    loss hands the PeerIn's table to a dynamic deletion stage
    (§5.1.2) and the session may come straight back up; re-established
    sessions receive a background dump of the current winners.

    Nexthop resolution uses the RIB's [register_interest] XRLs
    (§5.2.1), with the answer cache invalidated via the
    [rib_client/1.0/route_info_invalid] callback; or, for standalone
    topologies without a RIB, the [`Assume_resolvable] mode. *)

type t

type peer_config = {
  peer_addr : Ipv4.t;
  local_addr : Ipv4.t;
  peer_as : int;
  hold_time : float;
  connect_retry : float;
  passive : bool option;
  (** [None]: the side with the lower address dials. *)
  import_policies : Policy.program list;
  export_policies : Policy.program list;
  damping : Bgp_damping.params option;
  (** [Some p] plumbs a damping stage into this peer's input branch. *)
  checking_cache : bool;
  (** Plumb the §5.1 consistency-checking cache stage into the output
      branch (debugging). *)
  deletion_slice : int;
  (** Routes deleted per background slice after a peering loss. *)
  aggregates : Bgp_aggregation.aggregate_config list;
  (** Aggregation stages for this peer's output branch: while any
      component route inside an aggregate prefix is alive, the
      aggregate is announced (ATOMIC_AGGREGATE, empty AS path), with
      the more-specifics optionally suppressed. *)
}

val default_peer_config :
  peer_addr:Ipv4.t -> local_addr:Ipv4.t -> peer_as:int -> peer_config
(** hold 90 s, retry 5 s, auto dial direction, no policies, no damping,
    no checking cache, deletion slice 100. *)

val create :
  ?families:Pf.family list ->
  ?profiler:Profiler.t ->
  ?send_to_rib:bool ->
  ?nexthop_mode:[ `Rib | `Assume_resolvable ] ->
  ?bgp_port:int ->
  ?inbound_slice:int ->
  ?urgent_threshold:int ->
  ?lane_ordered:bool ->
  ?rib_rebirth_resync:bool ->
  ?redump_on_reestablish:bool ->
  ?shard_dispatch:(lane:Laneq.lane -> Bgp_decision.shard_op -> unit) ->
  Finder.t -> Eventloop.t -> netsim:Netsim.t ->
  local_as:int -> bgp_id:Ipv4.t -> unit -> t
(** Registers component class ["bgp"] with the Finder. [families]
    selects the XRL transports of the component's endpoint (default:
    intra-process; the simulation harness passes a chaos-wrapped
    family). [send_to_rib] defaults to true; [nexthop_mode] defaults to
    [`Rib]; [bgp_port] defaults to 179.

    [inbound_slice] (default 64) is the per-loop-turn work bound of
    each peer's inbound staging task: received UPDATEs that cannot be
    processed synchronously are staged per peer and drained
    [inbound_slice] route operations per turn by a background task
    (§4), so a 146k-route table load never monopolises the loop.
    [urgent_threshold] (default 64) decides the lane of each drained
    operation: while a peer's staged backlog is at least the threshold
    the drain is a bulk load, below it the operations are urgent (a
    flap during the load). An UPDATE carrying fewer than
    [urgent_threshold] operations arriving on an empty staging queue
    is processed synchronously in the urgent lane — the idle-path
    behaviour is exactly the pre-slicing pipeline.

    [lane_ordered] (default true) keeps the per-prefix FIFO guard of
    the urgent/bulk lanes everywhere (an urgent change for a prefix
    with bulk work still queued is demoted behind it, §5.1.2).
    [lane_ordered:false] is the deliberately broken variant the
    simulation fuzzer must catch.

    [rib_rebirth_resync] (default true) makes the process watch the
    ["rib"] Finder class: while no RIB instance is live, outbound
    route operations are held, and when one is (re)born the process
    re-subscribes its redistribution policies and replays the full
    post-decision winner set on the bulk lane. [false] is the
    deliberately broken variant behind the fuzzer's
    [rib-no-resync] injected bug: the reborn RIB is marked up but
    only deltas held during the outage are flushed.

    [redump_on_reestablish] (default true) re-dumps the full winners
    table to a peer whose session re-reaches Established after going
    down (the peer dropped everything previously advertised with the
    session). [false] is the deliberately broken variant behind the
    fuzzer's [mesh-partition-heal] injected bug: after a severed link
    heals only post-heal deltas flow, so routes that predate the cut
    never reach the peer again.

    [shard_dispatch] switches the decision stage into {e sharded}
    mode (docs/CONCURRENCY.md): route operations reaching Decision are
    forwarded to the callback (tagged with their ambient lane) instead
    of being decided in-process, and the winner table becomes a mirror
    fed by {!apply_winner_delta}. Everything upstream (sessions,
    staging, filters, nexthop resolution) and downstream (fanout,
    per-peer export branches, the RIB branch) is unchanged: a winner
    delivered by a shard worker travels to the RIB over the same XRL
    boundary as a single-domain decision result.

    @raise Invalid_argument if [inbound_slice] or [urgent_threshold]
    is not positive. *)

val add_peer : t -> peer_config -> unit
(** @raise Invalid_argument if the peer address is already configured. *)

val remove_peer : t -> Ipv4.t -> unit
(** Administrative stop; the peer's routes are flushed in the
    background by a deletion stage. *)

val start : t -> unit
(** Begin listening and dialing. *)

val originate : t -> Ipv4net.t -> unit
(** Advertise a locally originated network to all peers. *)

val subscribe_rib_redistribution : t -> policy:string -> unit
(** Ask the RIB to redistribute matching routes into BGP
    ([rib/1.0/redist_subscribe] targeting this component); they are
    advertised with INCOMPLETE origin. The policy is stack-language
    source. *)

val withdraw : t -> Ipv4net.t -> unit

val peer_state : t -> Ipv4.t -> Peer_fsm.state option
val peer_addresses : t -> Ipv4.t list
val established_count : t -> int

val route_count : t -> int
(** Post-decision winners. *)

val fold_winners : t -> (Bgp_types.route -> 'a -> 'a) -> 'a -> 'a
(** Fold over the post-decision winner table (prefix order). *)

(** {1 Sharded-mode hooks} (wired by [Shard.connect_bgp]) *)

val apply_winner_delta :
  t -> lane:Laneq.lane -> Ipv4net.t -> Bgp_types.route option -> unit
(** Sharded mode only: install the decision winner computed by a shard
    worker for one prefix ([None] = no winner). The delta is diffed
    against the local winner mirror (idempotent under replay) and
    pushed to the fanout under [lane] — from where it reaches peers and
    the RIB branch exactly as a single-domain decision change would.
    @raise Invalid_argument when the process is not sharded. *)

val ribin_count : t -> Ipv4.t -> int
(** Routes currently stored in one peer's PeerIn. *)

val deletion_stages : t -> Ipv4.t -> int
(** Active background deletion stages on one peer's branch. *)

val cache_violations : t -> string list
(** Violations recorded by all checking-cache stages. *)

val set_import_policies : t -> Ipv4.t -> Policy.program list -> bool
(** Replace a peer's import filter bank; triggers the background
    re-filter pass. Returns false if the peer is unknown. *)

val sever_session : t -> Ipv4.t -> bool
(** Fault injection: silently cut the TCP session with a peer (no close
    notification — only hold timers can detect it). Returns false if
    there is no live endpoint. *)

val fanout_queue_length : t -> int
val fanout_peak_queue_length : t -> int

val inbound_backlog : t -> int
(** Route operations staged across all peers' inbound queues, waiting
    for their background drain tasks. Zero when idle or settled; also
    surfaced as the [bgp.inbound.backlog] gauge. *)

val instance_name : t -> string
val xrl_router : t -> Xrl_router.t
val shutdown : t -> unit

(** {1 Profile points (Figures 10–12)} *)

val pp_entering : string
(** ["bgp_in"] — UPDATE entering BGP. *)

val pp_queued_rib : string
(** ["bgp_queued_rib"] — winner queued for transmission to the RIB. *)

val pp_sent_rib : string
(** ["bgp_sent_rib"] — sent to the RIB. *)
