let src = Logs.Src.create "xorp.bgp.fsm" ~doc:"BGP peer FSM"

module Log = (val Logs.src_log src : Logs.LOG)

type state = Idle | Connect | Active | OpenSent | OpenConfirm | Established

let state_to_string = function
  | Idle -> "Idle"
  | Connect -> "Connect"
  | Active -> "Active"
  | OpenSent -> "OpenSent"
  | OpenConfirm -> "OpenConfirm"
  | Established -> "Established"

type config = {
  local_as : int;
  bgp_id : Ipv4.t;
  peer_as : int;
  hold_time : float;
}

type transport = { tr_send : string -> unit; tr_close : unit -> unit }

type callbacks = {
  on_established : unit -> unit;
  on_update : Bgp_packet.msg -> unit;
  on_down : string -> unit;
}

type t = {
  loop : Eventloop.t;
  config : config;
  cbs : callbacks;
  mutable st : state;
  mutable transport : transport option;
  mutable parser : Bgp_packet.Stream_parser.t;
  mutable hold : float; (* negotiated *)
  mutable hold_timer : Eventloop.timer option;
  mutable keepalive_timer : Eventloop.timer option;
  mutable rx_updates : int;
  mutable tx_updates : int;
}

let create loop config cbs =
  {
    loop; config; cbs; st = Idle; transport = None;
    parser = Bgp_packet.Stream_parser.create ();
    hold = 0.0; hold_timer = None; keepalive_timer = None;
    rx_updates = 0; tx_updates = 0;
  }

let state t = t.st
let negotiated_hold_time t = if t.st = Established then t.hold else 0.0
let updates_received t = t.rx_updates
let updates_sent t = t.tx_updates

let cancel_timers t =
  Option.iter Eventloop.cancel t.hold_timer;
  Option.iter Eventloop.cancel t.keepalive_timer;
  t.hold_timer <- None;
  t.keepalive_timer <- None

let close_transport t =
  (match t.transport with Some tr -> tr.tr_close () | None -> ());
  t.transport <- None

let to_idle ?(notify = true) t reason =
  let was = t.st in
  cancel_timers t;
  close_transport t;
  t.st <- Idle;
  t.parser <- Bgp_packet.Stream_parser.create ();
  if notify && was <> Idle then t.cbs.on_down reason

let send_msg t msg =
  match t.transport with
  | Some tr -> tr.tr_send (Bgp_packet.encode msg)
  | None -> ()

let send_notification t code subcode =
  send_msg t (Bgp_packet.Notification { code; subcode; data = "" })

let reset_hold_timer t =
  Option.iter Eventloop.cancel t.hold_timer;
  if t.hold > 0.0 then
    t.hold_timer <-
      Some
        (Eventloop.after t.loop t.hold (fun () ->
             send_notification t Bgp_packet.err_hold_timer 0;
             to_idle t "hold timer expired"))

let start_keepalives t =
  Option.iter Eventloop.cancel t.keepalive_timer;
  if t.hold > 0.0 then begin
    let ival = t.hold /. 3.0 in
    t.keepalive_timer <-
      Some
        (Eventloop.periodic t.loop ival (fun () ->
             send_msg t Bgp_packet.Keepalive;
             true))
  end

let start_active t = if t.st = Idle then t.st <- Connect
let start_passive t = if t.st = Idle then t.st <- Active

let send_open t =
  send_msg t
    (Bgp_packet.Open
       { version = 4; my_as = t.config.local_as;
         hold_time = int_of_float t.config.hold_time;
         bgp_id = t.config.bgp_id })

let transport_up t tr =
  match t.st with
  | Idle | Connect | Active ->
    t.transport <- Some tr;
    t.parser <- Bgp_packet.Stream_parser.create ();
    send_open t;
    t.st <- OpenSent;
    (* Until negotiation completes, guard with our own hold time. *)
    t.hold <- t.config.hold_time;
    reset_hold_timer t
  | OpenSent | OpenConfirm | Established ->
    (* Connection collision: keep the existing session, refuse this
       transport. *)
    tr.tr_close ()

let transport_failed t =
  match t.st with
  | Connect | Active -> to_idle t "connect failed"
  | Idle | OpenSent | OpenConfirm | Established -> ()

let transport_closed t =
  match t.st with
  | Idle -> ()
  | Connect | Active | OpenSent | OpenConfirm | Established ->
    t.transport <- None;
    to_idle t "connection closed by peer"

let handle_open t (version, my_as, hold_time) =
  if version <> 4 then begin
    send_notification t Bgp_packet.err_open 1;
    to_idle t "unsupported BGP version"
  end
  else if my_as <> t.config.peer_as then begin
    send_notification t Bgp_packet.err_open 2;
    to_idle t
      (Printf.sprintf "bad peer AS %d (expected %d)" my_as t.config.peer_as)
  end
  else begin
    t.hold <- min t.config.hold_time (float_of_int hold_time);
    send_msg t Bgp_packet.Keepalive;
    t.st <- OpenConfirm;
    reset_hold_timer t
  end

let handle_msg t msg =
  reset_hold_timer t;
  match t.st, msg with
  | OpenSent, Bgp_packet.Open { version; my_as; hold_time; _ } ->
    handle_open t (version, my_as, hold_time)
  | OpenConfirm, Bgp_packet.Keepalive ->
    t.st <- Established;
    start_keepalives t;
    t.cbs.on_established ()
  | Established, Bgp_packet.Keepalive -> ()
  | Established, (Bgp_packet.Update _ as u) ->
    t.rx_updates <- t.rx_updates + 1;
    t.cbs.on_update u
  | _, Bgp_packet.Notification { code; subcode; _ } ->
    to_idle t (Printf.sprintf "peer sent NOTIFICATION %d/%d" code subcode)
  | (OpenSent | OpenConfirm), Bgp_packet.Update _ ->
    send_notification t Bgp_packet.err_fsm 0;
    to_idle t "UPDATE before session establishment"
  | Established, Bgp_packet.Open _ | OpenConfirm, Bgp_packet.Open _ ->
    send_notification t Bgp_packet.err_fsm 0;
    to_idle t "unexpected OPEN"
  | OpenSent, Bgp_packet.Keepalive ->
    send_notification t Bgp_packet.err_fsm 0;
    to_idle t "KEEPALIVE before OPEN"
  | (Idle | Connect | Active), _ ->
    Log.warn (fun m -> m "message in state %s dropped" (state_to_string t.st))

let recv t data =
  match Bgp_packet.Stream_parser.feed t.parser data with
  | Ok msgs -> List.iter (fun msg -> if t.st <> Idle then handle_msg t msg) msgs
  | Error e ->
    send_notification t Bgp_packet.err_msg_header 0;
    to_idle t ("framing error: " ^ e)

let send_update t msg =
  if t.st = Established then begin
    t.tx_updates <- t.tx_updates + 1;
    send_msg t msg;
    true
  end
  else false

let stop t =
  if t.st <> Idle then begin
    send_notification t Bgp_packet.err_cease 0;
    to_idle ~notify:false t "administrative stop"
  end
