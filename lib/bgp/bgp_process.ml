let src = Logs.Src.create "xorp.bgp" ~doc:"BGP process"

module Log = (val Logs.src_log src : Logs.LOG)

let pp_entering = "bgp_in"
let pp_queued_rib = "bgp_queued_rib"
let pp_sent_rib = "bgp_sent_rib"

type peer_config = {
  peer_addr : Ipv4.t;
  local_addr : Ipv4.t;
  peer_as : int;
  hold_time : float;
  connect_retry : float;
  passive : bool option;
  import_policies : Policy.program list;
  export_policies : Policy.program list;
  damping : Bgp_damping.params option;
  checking_cache : bool;
  deletion_slice : int;
  aggregates : Bgp_aggregation.aggregate_config list;
}

let default_peer_config ~peer_addr ~local_addr ~peer_as =
  { peer_addr; local_addr; peer_as; hold_time = 90.0; connect_retry = 5.0;
    passive = None; import_policies = []; export_policies = [];
    damping = None; checking_cache = false; deletion_slice = 100;
    aggregates = [] }

(* One staged prefix from an inbound UPDATE, waiting in the per-peer
   staging queue for the background drain task (§4): the session
   handler validates the UPDATE and enqueues, and the route only
   enters rib-in → decision → fanout when the drain task gets a
   slice. *)
type inbound_op = {
  i_net : Ipv4net.t;
  i_action : [ `Add of Bgp_types.attrs | `Withdraw ];
  i_trace : Telemetry.Trace.ctx option;
}

type peer = {
  cfg : peer_config;
  info : Bgp_types.peer_info;
  fsm : Peer_fsm.t;
  ribin : Bgp_ribin.rib_in;
  import_filter : Bgp_filter.filter_table;
  damping_tbl : Bgp_damping.damping_table option;
  nexthop_tbl : Bgp_nexthop.nexthop_table;
  export_branch : Bgp_table.table; (* top of the output branch *)
  out_cache : Bgp_cache.cache_table option;
  ribout : Bgp_ribout.rib_out;
  inbound : inbound_op Queue.t;
  mutable inbound_task : Eventloop.task option;
  mutable retry_timer : Eventloop.timer option;
  mutable endpoint : Netsim.Stream.endpoint option;
  mutable dump_task : Eventloop.task option;
  mutable removed : bool;
  (* Has this peering ever reached Established? Re-establishments must
     re-dump the winners table ([redump_on_reestablish]); the injected
     mesh-partition-heal bug skips exactly that. *)
  mutable was_established : bool;
}

type t = {
  router : Xrl_router.t;
  loop : Eventloop.t;
  netsim : Netsim.t;
  profiler : Profiler.t option;
  local_as : int;
  bgp_id : Ipv4.t;
  bgp_port : int;
  send_to_rib : bool;
  nexthop_mode : [ `Rib | `Assume_resolvable ];
  (* Inbound slicing and lane classification (§4 + §5.1): each slice
     of a peer's drain task moves [1] staged prefix, [inbound_slice]
     slices per event-loop turn; an op drained while its peer's
     staging backlog is at least [urgent_threshold] is classified
     bulk, otherwise urgent. *)
  inbound_slice : int;
  urgent_threshold : int;
  lane_ordered : bool;
  mutable inbound_backlog : int; (* staged ops across all peers *)
  g_inbound : Telemetry.gauge;
  peers : (int, peer) Hashtbl.t; (* keyed by peer address *)
  (* peer_id -> kind, kept even after peer removal so in-flight RIB
     withdrawals are attributed to the right origin protocol *)
  peer_kinds : (int, Bgp_types.peer_kind) Hashtbl.t;
  mutable next_peer_id : int;
  decision : Bgp_decision.view;
  (* Present when the decision stage runs on shard-worker domains:
     [decision] is then the mirror forwarding ops to the pool, and
     winner deltas come back through [apply_winner_delta], whose fanout
     push reaches the RIB over the ordinary RIB branch — the XRL
     boundary is the same in both modes, so [replay_winners] (reading
     the mirror) also covers RIB-rebirth resync unchanged. *)
  shard_mirror : Bgp_decision.shard_mirror option;
  fanout : Bgp_fanout.fanout_table;
  local_ribin : Bgp_ribin.rib_in;
  listeners : (int, Netsim.Stream.listener) Hashtbl.t; (* by local addr *)
  rib_q : (string * Bgp_types.route * Telemetry.Trace.ctx option) Laneq.t;
  mutable rib_flush_scheduled : bool;
  (* False while no RIB instance is registered: outbound route ops
     hold in [rib_q] instead of being sent into the void, and a
     rebirth triggers a full winner replay (the restarted RIB's origin
     tables are empty). *)
  mutable rib_up : bool;
  rib_rebirth_resync : bool;
  redump_on_reestablish : bool;
  (* Redistribution policies this process has subscribed with; the
     RIB's subscriber table dies with it, so these are re-sent on
     rebirth. *)
  mutable redist_policies : string list;
  c_resync_replayed : Telemetry.counter;
  mutable started : bool;
}

(* Hot-path variant: skips the payload string construction entirely
   when the point is disabled, so a full-table load does not pay one
   [Ipv4net.to_string] plus a concat per route per point. *)
let profile_net t point verb net =
  match t.profiler with
  | Some p when Profiler.enabled p point ->
    Profiler.record p point (verb ^ Ipv4net.to_string net)
  | _ -> ()

let instance_name t = Xrl_router.instance_name t.router
let xrl_router t = t.router

(* --- RIB branch ------------------------------------------------------ *)

let rib_protocol t (route : Bgp_types.route) =
  match Hashtbl.find_opt t.peer_kinds route.Bgp_types.peer_id with
  | Some Bgp_types.Ibgp -> "ibgp"
  | _ -> "ebgp"

(* Route transfers into the RIB are idempotent, so they qualify for
   bounded retry. [No_such_method] is in the retryable set, which
   closes the Finder birth gap: a reborn RIB is resolvable one loop
   turn before its handlers are registered, and without retry a send
   landing in that window would be lost. *)
let rib_retry = Xrl_router.default_retry

(* Per-route XRL; also the path a single-entry run takes, so the
   unbatched pipeline (and its profile-point sequence) is exactly what
   it was before bulk transfer — Figures 10-12 flap one route at a
   time and still measure this path. *)
let send_rib_one t (op, (route : Bgp_types.route), trace) =
  Telemetry.Trace.with_ctx trace @@ fun () ->
  Telemetry.Trace.span_sync ~name:"bgp.rib_send"
    ~clock:(fun () -> Eventloop.now t.loop)
  @@ fun () ->
  profile_net t pp_sent_rib (op ^ " ") route.Bgp_types.net;
  let protocol = rib_protocol t route in
  let xrl =
    if op = "add" then
      Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"add_route"
        [ Xrl_atom.txt "protocol" protocol;
          Xrl_atom.ipv4net "net" route.Bgp_types.net;
          Xrl_atom.ipv4 "nexthop" route.Bgp_types.attrs.nexthop;
          Xrl_atom.u32 "metric"
            (Option.value route.Bgp_types.attrs.med ~default:0) ]
    else
      Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"delete_route"
        [ Xrl_atom.txt "protocol" protocol;
          Xrl_atom.ipv4net "net" route.Bgp_types.net ]
  in
  Xrl_router.send ~retry:rib_retry t.router xrl (fun err _ ->
      if not (Xrl_error.is_ok err) then
        Log.warn (fun m ->
            m "RIB %s for %s failed: %s" op
              (Ipv4net.to_string route.Bgp_types.net)
              (Xrl_error.to_string err)))

(* A run of queued updates with the same operation and protocol leaves
   as one rib/add_routes4 or rib/delete_routes4 XRL carrying a
   Route_pack-packed list — the same bulk transfer the RIB already
   uses towards the FEA (PR 2), now applied to the BGP->RIB leg, which
   used to dominate full-table load time. Profile points stay per
   route. *)
let send_rib_run t entries =
  match entries with
  | [] -> ()
  | [ entry ] -> send_rib_one t entry
  | (op0, (route0 : Bgp_types.route), first_trace) :: _ ->
    let n = List.length entries in
    List.iter
      (fun (op, (route : Bgp_types.route), trace) ->
         Telemetry.Trace.with_ctx trace (fun () ->
             profile_net t pp_sent_rib (op ^ " ") route.Bgp_types.net))
      entries;
    Telemetry.Trace.with_ctx first_trace @@ fun () ->
    Telemetry.Trace.span_sync ~name:"bgp.rib_send"
      ~note:(string_of_int n ^ " routes")
      ~clock:(fun () -> Eventloop.now t.loop)
    @@ fun () ->
    let xrl =
      if op0 = "add" then
        let adds =
          List.map
            (fun (_, (r : Bgp_types.route), _) ->
               { Route_pack.net = r.Bgp_types.net;
                 nexthop = r.Bgp_types.attrs.nexthop;
                 ifname = ""; protocol = rib_protocol t r;
                 metric = Option.value r.Bgp_types.attrs.med ~default:0 })
            entries
        in
        Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"add_routes4"
          [ Xrl_atom.binary "routes" (Route_pack.pack_adds adds) ]
      else
        Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"delete_routes4"
          [ Xrl_atom.txt "protocol" (rib_protocol t route0);
            Xrl_atom.binary "routes"
              (Route_pack.pack_deletes
                 (List.map (fun (_, (r : Bgp_types.route), _) -> r.Bgp_types.net)
                    entries)) ]
    in
    Xrl_router.send ~retry:rib_retry t.router xrl (fun err _ ->
        if not (Xrl_error.is_ok err) then
          Log.warn (fun m ->
              m "bulk RIB %s (%d routes) failed: %s" op0 n
                (Xrl_error.to_string err)))

(* Bulk-lane routes forwarded to the RIB per deferred flush: bounds how
   long one loop turn spends packing and how large a synchronous run
   the RIB's bulk handler processes, so an urgent flush in the next
   turn is never far away. *)
let rib_bulk_slice = 128

let rec schedule_rib_flush t =
  if not t.rib_flush_scheduled then begin
    t.rib_flush_scheduled <- true;
    Eventloop.defer t.loop (fun () ->
        t.rib_flush_scheduled <- false;
        (* No live RIB: keep the queue. It goes out — or is superseded
           by the full winner replay — once an instance is back. *)
        if t.rib_up then begin
          (* Urgent lane first, as per-route XRLs — the method is how
             the lane crosses the XRL boundary: the RIB classifies
             per-route rib/add_route arrivals as urgent and bulk-packed
             rib/add_routes4 arrivals as bulk. Per-prefix order across
             lanes is the Laneq guard's job. *)
          let rec urgent () =
            match Laneq.pop_urgent t.rib_q with
            | Some (_, entry) ->
              send_rib_one t entry;
              urgent ()
            | None -> ()
          in
          urgent ();
          (* Group consecutive same-op, same-protocol bulk entries into
             runs, preserving overall order: an add/delete alternation
             for the same prefix must reach the RIB in sequence. Bounded
             per flush; leftovers re-defer so timers and fresh I/O get
             the loop in between. *)
          let budget = ref rib_bulk_slice in
          let rec drain run =
            if !budget = 0 then send_rib_run t (List.rev run)
            else
              match Laneq.pop_bulk t.rib_q with
              | None -> send_rib_run t (List.rev run)
              | Some (_, ((op, route, _) as entry)) -> (
                decr budget;
                match run with
                | [] -> drain [ entry ]
                | (prev_op, prev_route, _) :: _
                  when prev_op = op
                       && rib_protocol t prev_route = rib_protocol t route ->
                  drain (entry :: run)
                | _ ->
                  send_rib_run t (List.rev run);
                  drain [ entry ])
          in
          drain [];
          if not (Laneq.is_empty t.rib_q) then schedule_rib_flush t
        end)
  end

(* The fanout reader feeding the RIB. Locally originated routes
   (peer 0) are skipped: the RIB learned them by other means. *)
let make_rib_branch t : Bgp_table.table =
  let on op (route : Bgp_types.route) =
    if route.Bgp_types.peer_id <> 0 && t.send_to_rib then begin
      profile_net t pp_queued_rib (op ^ " ") route.net;
      Laneq.push t.rib_q
        (Bgp_types.current_lane ())
        ~net:route.Bgp_types.net
        (op, route, Telemetry.Trace.current ());
      if t.rib_up then schedule_rib_flush t
    end
  in
  (new Bgp_table.sink ~name:"to-rib"
    ~parent:(t.decision :> Bgp_table.table)
    ~on_add:(fun r -> on "add" r)
    ~on_delete:(fun r -> on "delete" r)
   :> Bgp_table.table)

(* --- nexthop resolution ---------------------------------------------- *)

let make_resolver t : Bgp_nexthop.resolve_fn =
  match t.nexthop_mode with
  | `Assume_resolvable ->
    fun nh cb ->
      cb { Bgp_nexthop.resolvable = true; metric = 0; valid = Ipv4net.host nh }
  | `Rib ->
    fun nh cb ->
      let xrl =
        Xrl.make ~target:"rib" ~interface:"rib"
          ~method_name:"register_interest"
          [ Xrl_atom.txt "client" (instance_name t); Xrl_atom.ipv4 "addr" nh ]
      in
      Xrl_router.send ~retry:rib_retry t.router xrl (fun err args ->
          if Xrl_error.is_ok err then begin
            let resolvable = Xrl_atom.get_bool args "resolves" in
            let valid = Xrl_atom.get_ipv4net args "valid" in
            let metric =
              if resolvable then Xrl_atom.get_u32 args "metric" else 0
            in
            cb { Bgp_nexthop.resolvable; metric; valid }
          end
          else begin
            Log.warn (fun m ->
                m "nexthop query for %s failed: %s" (Ipv4.to_string nh)
                  (Xrl_error.to_string err));
            cb
              { Bgp_nexthop.resolvable = false; metric = 0;
                valid = Ipv4net.host nh }
          end)

(* --- RIB rebirth resync (the mirror of Rib.watch_fea_lifecycle) ------- *)

let send_redist_subscribe t policy =
  let xrl =
    Xrl.make ~target:"rib" ~interface:"rib" ~method_name:"redist_subscribe"
      [ Xrl_atom.txt "target" (instance_name t);
        Xrl_atom.txt "policy" policy ]
  in
  Xrl_router.send ~retry:rib_retry t.router xrl (fun err _ ->
      if not (Xrl_error.is_ok err) then
        Log.err (fun m ->
            m "redist_subscribe failed: %s" (Xrl_error.to_string err)))

(* A reborn RIB starts from empty origin tables, so deltas queued
   against the old instance would be wrong; replace them with a full
   dump of the post-decision winners. The dump rides the bulk lane:
   fresh urgent changes for other prefixes overtake it, while the
   Laneq guard keeps a live update to a replayed prefix behind its
   replay entry (§5.1.2). *)
let replay_winners t =
  Laneq.clear t.rib_q;
  let n =
    t.decision#fold_winners
      (fun (route : Bgp_types.route) n ->
         if route.Bgp_types.peer_id <> 0 then begin
           Laneq.push t.rib_q Laneq.Bulk ~net:route.Bgp_types.net
             ("add", route, None);
           n + 1
         end
         else n)
      0
  in
  Telemetry.add t.c_resync_replayed n;
  Log.info (fun m -> m "RIB is back; replaying %d winners" n)

(* Watch the RIB's own lifetime: while no instance is live, outbound
   route ops hold in [rib_q]; a (re)birth replays the winners and
   re-subscribes redistribution, because both the origin tables and
   the redist/register state died with the old instance. Cached
   nexthop resolutions are invalidated wholesale so every nexthop is
   re-queried — which also re-registers the interest the new
   RegisterTable needs to push future invalidations. The synthetic
   Birth fired for an already-live RIB at watch time is a no-op
   because [rib_up] starts true. *)
let watch_rib_lifecycle t finder =
  Finder.watch_class finder "rib" (fun event _instance ->
      match event with
      | Finder.Death ->
        if t.rib_up && Finder.live_instances finder "rib" = [] then begin
          t.rib_up <- false;
          Log.warn (fun m ->
              m "RIB died; holding route updates until an instance returns")
        end
      | Finder.Birth ->
        if not t.rib_up then begin
          t.rib_up <- true;
          (* Deferred: the birth notification fires from inside the new
             RIB's registration, before it has advertised its methods
             (the PR 5 race class; retry also covers the gap). *)
          Eventloop.defer t.loop (fun () ->
              if t.rib_up then begin
                if t.rib_rebirth_resync then begin
                  List.iter (send_redist_subscribe t)
                    (List.rev t.redist_policies);
                  if t.send_to_rib then replay_winners t;
                  if t.nexthop_mode = `Rib then
                    Hashtbl.iter
                      (fun _ peer ->
                         peer.nexthop_tbl#invalidate Ipv4net.default)
                      t.peers
                end;
                (* Faulty variant kept for the simulation harness's
                   bug-injection mode ("rib-no-resync"): only the
                   deltas held while the RIB was down flush, so every
                   route announced before the death is silently missing
                   from the reborn RIB's origin tables. *)
                if t.send_to_rib && not (Laneq.is_empty t.rib_q) then
                  schedule_rib_flush t
              end)
        end)

(* --- session plumbing ------------------------------------------------- *)

let peer_key addr = Ipv4.to_int addr
let find_peer t addr = Hashtbl.find_opt t.peers (peer_key addr)

(* Replicates the fanout's advertisement rules for table dumps. *)
let dump_should_send (to_info : Bgp_types.peer_info)
    (from_info : Bgp_types.peer_info option) (route : Bgp_types.route) =
  let from_id = route.Bgp_types.peer_id in
  if from_id = 0 then true
  else if from_id = to_info.peer_id then false
  else
    match from_info with
    | Some from when from.kind = Bgp_types.Ibgp && to_info.kind = Bgp_types.Ibgp
      -> false
    | _ -> true

let start_winner_dump t peer =
  (match peer.dump_task with
   | Some task -> Eventloop.remove_task task
   | None -> ());
  let it = t.decision#winners_iter in
  let one () =
    match Ptree.Safe_iter.next it with
    | None ->
      peer.dump_task <- None;
      `Done
    | Some (_, route) ->
      if
        dump_should_send peer.info
          (t.decision#peer_info route.Bgp_types.peer_id)
          route
      then
        (* A table dump is bulk by definition: fresh updates flowing
           through the fanout overtake it in the peer's RibOut. *)
        Bgp_types.with_lane Laneq.Bulk (fun () ->
            peer.export_branch#add_route route);
      `Continue
  in
  peer.dump_task <- Some (Eventloop.add_task t.loop ~weight:100 one)

(* --- inbound staging (§4 background-task slicing) --------------------- *)

let inbound_backlog t = t.inbound_backlog

let adjust_backlog t delta =
  t.inbound_backlog <- t.inbound_backlog + delta;
  Telemetry.set_gauge t.g_inbound (float_of_int t.inbound_backlog)

let apply_inbound peer (op : inbound_op) =
  match op.i_action with
  | `Withdraw ->
    peer.ribin#delete_route
      { Bgp_types.net = op.i_net;
        attrs = Bgp_types.default_attrs ~nexthop:Ipv4.zero;
        peer_id = peer.info.peer_id; igp_metric = None }
  | `Add attrs ->
    peer.ribin#add_route
      { Bgp_types.net = op.i_net; attrs; peer_id = peer.info.peer_id;
        igp_metric = None }

(* The per-peer drain task: one staged prefix per slice,
   [t.inbound_slice] slices per event-loop turn, so a bulk table load
   chips away between timers and fresh I/O instead of monopolising the
   loop (the same §4 machinery as [start_winner_dump]). Lane
   classification happens here, at drain time: an op drained while the
   peer's staging backlog is deep is bulk; an op drained from a nearly
   empty queue (a flap, or the tail of a load) is urgent. *)
let ensure_inbound_task t peer =
  match peer.inbound_task with
  | Some _ -> ()
  | None ->
    let one () =
      match Queue.take_opt peer.inbound with
      | None ->
        peer.inbound_task <- None;
        `Done
      | Some op ->
        adjust_backlog t (-1);
        let lane : Laneq.lane =
          if Queue.length peer.inbound >= t.urgent_threshold then Laneq.Bulk
          else Laneq.Urgent
        in
        Bgp_types.with_lane lane (fun () ->
            Telemetry.Trace.with_ctx op.i_trace (fun () ->
                apply_inbound peer op));
        `Continue
    in
    peer.inbound_task <-
      Some (Eventloop.add_task t.loop ~weight:t.inbound_slice one)

(* Session gone: staged-but-undrained ops die with it (the Adj-RIB-In
   they would have entered is being flushed anyway). *)
let clear_inbound t peer =
  adjust_backlog t (-Queue.length peer.inbound);
  Queue.clear peer.inbound;
  match peer.inbound_task with
  | Some task ->
    Eventloop.remove_task task;
    peer.inbound_task <- None
  | None -> ()

let handle_update t peer (msg : Bgp_packet.msg) =
  match msg with
  | Bgp_packet.Update { withdrawn; attrs; nlri } ->
    (* The whole UPDATE is one root span; per-prefix work downstream
       (staged ops, fanout entries, rib_q entries, the RIB and FEA
       handlers) links back to it through the captured contexts. *)
    Telemetry.Trace.span_sync ~name:"bgp.update"
      ~note:
        (Printf.sprintf "%s +%d -%d"
           (Ipv4.to_string peer.cfg.peer_addr)
           (List.length nlri) (List.length withdrawn))
      ~clock:(fun () -> Eventloop.now t.loop)
    @@ fun () ->
    (* One record per prefix, so per-route latency can be traced
       through all eight profile points of §8.2. The entering point is
       recorded at receive time — staging delay is part of what the
       later points measure. *)
    List.iter (fun net -> profile_net t pp_entering "delete " net) withdrawn;
    List.iter (fun net -> profile_net t pp_entering "add " net) nlri;
    (* Validation is per UPDATE, not per prefix, so it happens at
       receive time: AS-loop rejection and the LOCAL_PREF session rule
       (only meaningful on IBGP). *)
    let nlri_attrs =
      match attrs with
      | Some a when nlri <> [] ->
        if Aspath.contains a.Bgp_types.aspath t.local_as then begin
          (* AS loop: our own AS already in the path. *)
          Log.debug (fun m ->
              m "loop detected from %s, ignoring %d prefixes"
                (Ipv4.to_string peer.cfg.peer_addr)
                (List.length nlri));
          None
        end
        else
          Some
            (match peer.info.kind with
             | Bgp_types.Ebgp -> { a with Bgp_types.localpref = None }
             | Bgp_types.Ibgp -> a)
      | _ -> None
    in
    let n_ops =
      List.length withdrawn
      + (match nlri_attrs with Some _ -> List.length nlri | None -> 0)
    in
    if Queue.is_empty peer.inbound && n_ops < t.urgent_threshold then
      (* Fast path: nothing staged for this peer and the UPDATE is
         flap-sized. Process synchronously in the urgent lane — the
         idle-path pipeline (and its profile-point sequence) is exactly
         what it was before inbound slicing, and a flap arriving during
         another peer's bulk load enters the urgent lane right here. *)
      Bgp_types.with_lane Laneq.Urgent (fun () ->
          List.iter
            (fun net ->
               peer.ribin#delete_route
                 { Bgp_types.net;
                   attrs = Bgp_types.default_attrs ~nexthop:Ipv4.zero;
                   peer_id = peer.info.peer_id; igp_metric = None })
            withdrawn;
          match nlri_attrs with
          | Some a ->
            List.iter
              (fun net ->
                 peer.ribin#add_route
                   { Bgp_types.net; attrs = a;
                     peer_id = peer.info.peer_id; igp_metric = None })
              nlri
          | None -> ())
    else begin
      (* Bulk path: stage every prefix (withdrawals first, as they
         came) and let the background task drain them a slice at a
         time. Per-peer FIFO keeps the §5.1.2 ordering within the
         staging queue itself. *)
      let stage action net =
        Queue.push
          { i_net = net; i_action = action;
            i_trace = Telemetry.Trace.current () }
          peer.inbound
      in
      List.iter (stage `Withdraw) withdrawn;
      (match nlri_attrs with
       | Some a -> List.iter (stage (`Add a)) nlri
       | None -> ());
      adjust_backlog t n_ops;
      ensure_inbound_task t peer
    end
  | _ -> ()

let rec schedule_redial t peer =
  (match peer.retry_timer with
   | Some timer -> Eventloop.cancel timer
   | None -> ());
  if not peer.removed then
    peer.retry_timer <-
      Some (Eventloop.after t.loop peer.cfg.connect_retry (fun () -> dial t peer))

and dial t peer =
  if (not peer.removed) && Peer_fsm.state peer.fsm = Peer_fsm.Idle then begin
    Peer_fsm.start_active peer.fsm;
    Netsim.Stream.connect t.netsim ~src:peer.cfg.local_addr
      ~dst:peer.cfg.peer_addr ~port:t.bgp_port (fun ep ->
          match ep with
          | Some ep -> attach_endpoint t peer ep
          | None ->
            Peer_fsm.transport_failed peer.fsm;
            schedule_redial t peer)
  end

and attach_endpoint _t peer ep =
  peer.endpoint <- Some ep;
  Netsim.Stream.on_receive ep (fun data -> Peer_fsm.recv peer.fsm data);
  Netsim.Stream.on_close ep (fun () -> Peer_fsm.transport_closed peer.fsm);
  Peer_fsm.transport_up peer.fsm
    { Peer_fsm.tr_send = (fun data -> Netsim.Stream.send ep data);
      tr_close = (fun () -> Netsim.Stream.close ep) }

let is_dialer peer =
  match peer.cfg.passive with
  | Some passive -> not passive
  | None -> Ipv4.compare peer.cfg.local_addr peer.cfg.peer_addr < 0

let on_peer_established t peer () =
  Log.info (fun m ->
      m "session with %s established" (Ipv4.to_string peer.cfg.peer_addr));
  peer.ribout#session_reset;
  t.fanout#add_reader ~info:peer.info peer.export_branch;
  let first = not peer.was_established in
  peer.was_established <- true;
  (* A session that comes back after a cut must be re-sent the whole
     winners table: the peer dropped everything we had advertised when
     the session went down. [redump_on_reestablish:false] is the
     injected mesh-partition-heal bug — only deltas after the heal
     flow, so routes that predate the cut never reach the peer again. *)
  if first || t.redump_on_reestablish then start_winner_dump t peer

let on_peer_down t peer reason =
  Log.info (fun m ->
      m "session with %s down: %s" (Ipv4.to_string peer.cfg.peer_addr) reason);
  t.fanout#remove_reader peer.info.peer_id;
  (match peer.dump_task with
   | Some task ->
     Eventloop.remove_task task;
     peer.dump_task <- None
   | None -> ());
  clear_inbound t peer;
  peer.endpoint <- None;
  (* Hand the whole table to a background deletion stage (§5.1.2). *)
  peer.ribin#peering_went_down ~slice:peer.cfg.deletion_slice ();
  if is_dialer peer then schedule_redial t peer
  else if not peer.removed then Peer_fsm.start_passive peer.fsm

(* --- peer construction ------------------------------------------------ *)

let build_peer t (cfg : peer_config) =
  t.next_peer_id <- t.next_peer_id + 1;
  let kind =
    if cfg.peer_as = t.local_as then Bgp_types.Ibgp else Bgp_types.Ebgp
  in
  let info =
    { Bgp_types.peer_id = t.next_peer_id; peer_addr = cfg.peer_addr;
      peer_as = cfg.peer_as; kind;
      (* Until the OPEN is seen we use the peer address as its BGP id;
         good enough for deterministic tie-breaking in simulation. *)
      peer_bgp_id = cfg.peer_addr }
  in
  let pname = Printf.sprintf "peer[%s]" (Ipv4.to_string cfg.peer_addr) in
  (* Input branch. *)
  let ribin =
    new Bgp_ribin.rib_in ~name:(pname ^ ":in") ~peer_id:info.peer_id t.loop
  in
  let import_filter =
    new Bgp_filter.filter_table
      ~name:(pname ^ ":import")
      ~parent:(ribin :> Bgp_table.table)
      ~local_as:t.local_as ~peer_as:cfg.peer_as
      ~programs:cfg.import_policies ()
  in
  Bgp_table.plumb ribin import_filter;
  let damping_tbl =
    match cfg.damping with
    | Some params ->
      let d =
        new Bgp_damping.damping_table
          ~name:(pname ^ ":damping") ~params
          ~parent:(import_filter :> Bgp_table.table)
          t.loop
      in
      Bgp_table.plumb import_filter d;
      Some d
    | None -> None
  in
  let nexthop_tbl =
    new Bgp_nexthop.nexthop_table
      ~name:(pname ^ ":nexthop") ~resolve:(make_resolver t) ()
  in
  (match damping_tbl with
   | Some d -> Bgp_table.plumb d nexthop_tbl
   | None -> Bgp_table.plumb import_filter nexthop_tbl);
  Bgp_table.plumb nexthop_tbl t.decision;
  t.decision#add_parent ~info (nexthop_tbl :> Bgp_table.table);
  Hashtbl.replace t.peer_kinds info.peer_id info.kind;
  (* Output branch: export filters → [cache] → ribout → session. *)
  let fsm_ref = ref None in
  let ribout =
    new Bgp_ribout.rib_out ~name:(pname ^ ":out") ~info ~local_as:t.local_as
      ~local_addr:cfg.local_addr
      ~send:(fun msg ->
          match !fsm_ref with
          | Some fsm -> Peer_fsm.send_update fsm msg
          | None -> false)
      ~ordered:t.lane_ordered t.loop
  in
  (* Output branch head: an optional aggregation stage in front of the
     export filters (§8.3-style late addition; neighbours unchanged). *)
  let aggregation =
    match cfg.aggregates with
    | [] -> None
    | aggregates ->
      Some
        (new Bgp_aggregation.aggregation_table
          ~name:(pname ^ ":aggregation") ~aggregates
          ~local_nexthop:cfg.local_addr
          ~parent:(t.fanout :> Bgp_table.table)
          ())
  in
  let export_parent =
    match aggregation with
    | Some a -> (a :> Bgp_table.table)
    | None -> (t.fanout :> Bgp_table.table)
  in
  let export_filter =
    new Bgp_filter.filter_table
      ~name:(pname ^ ":export")
      ~parent:export_parent
      ~local_as:t.local_as ~peer_as:cfg.peer_as
      ~programs:cfg.export_policies ()
  in
  (match aggregation with
   | Some a -> Bgp_table.plumb a export_filter
   | None -> ());
  let out_cache =
    if cfg.checking_cache then
      Some
        (new Bgp_cache.cache_table
          ~name:(pname ^ ":cache")
          ~parent:(export_filter :> Bgp_table.table)
          ())
    else None
  in
  (match out_cache with
   | Some c ->
     Bgp_table.plumb export_filter c;
     Bgp_table.plumb c ribout
   | None -> Bgp_table.plumb export_filter ribout);
  let rec peer =
    lazy
      {
        cfg; info;
        fsm =
          Peer_fsm.create t.loop
            { Peer_fsm.local_as = t.local_as; bgp_id = t.bgp_id;
              peer_as = cfg.peer_as; hold_time = cfg.hold_time }
            {
              Peer_fsm.on_established =
                (fun () -> on_peer_established t (Lazy.force peer) ());
              on_update = (fun msg -> handle_update t (Lazy.force peer) msg);
              on_down = (fun reason -> on_peer_down t (Lazy.force peer) reason);
            };
        ribin; import_filter; damping_tbl; nexthop_tbl;
        export_branch =
          (match aggregation with
           | Some a -> (a :> Bgp_table.table)
           | None -> (export_filter :> Bgp_table.table));
        out_cache; ribout;
        inbound = Queue.create (); inbound_task = None;
        retry_timer = None; endpoint = None; dump_task = None; removed = false;
        was_established = false;
      }
  in
  let peer = Lazy.force peer in
  fsm_ref := Some peer.fsm;
  peer

(* --- XRL interface ----------------------------------------------------- *)

let route_count t = t.decision#winner_count
let fold_winners t f init = t.decision#fold_winners f init

(* --- sharded-mode hooks (see lib/shard) ------------------------------ *)

let apply_winner_delta t ~lane net now =
  match t.shard_mirror with
  | Some m -> m#apply_winner ~lane net now
  | None -> invalid_arg "Bgp_process.apply_winner_delta: not sharded"

let originate t net =
  t.local_ribin#add_route
    { Bgp_types.net;
      attrs = Bgp_types.default_attrs ~nexthop:t.bgp_id;
      peer_id = 0; igp_metric = Some 0 }

let withdraw t net =
  t.local_ribin#delete_route
    { Bgp_types.net;
      attrs = Bgp_types.default_attrs ~nexthop:t.bgp_id;
      peer_id = 0; igp_metric = Some 0 }

let add_xrl_handlers t =
  let ok = Xrl_error.Ok_xrl in
  let r = t.router in
  Xrl_router.add_handler r ~interface:"rib_client"
    ~method_name:"route_info_invalid" (fun args reply ->
        let valid = Xrl_atom.get_ipv4net args "valid" in
        Hashtbl.iter
          (fun _ peer -> peer.nexthop_tbl#invalidate valid)
          t.peers;
        reply ok []);
  (* Redistribution INTO BGP (§3): the RIB's redist stage can feed us
     IGP routes, which we originate with INCOMPLETE origin, as real
     routers mark redistributed routes. *)
  Xrl_router.add_handler r ~interface:"redist_client" ~method_name:"add_route"
    (fun args reply ->
       let net = Xrl_atom.get_ipv4net args "net" in
       let med = Xrl_atom.get_u32 args "metric" in
       t.local_ribin#add_route
         { Bgp_types.net;
           attrs =
             { (Bgp_types.default_attrs ~nexthop:t.bgp_id) with
               Bgp_types.origin = Bgp_types.INCOMPLETE;
               med = (if med = 0 then None else Some med) };
           peer_id = 0; igp_metric = Some 0 };
       reply ok []);
  Xrl_router.add_handler r ~interface:"redist_client"
    ~method_name:"delete_route" (fun args reply ->
        withdraw t (Xrl_atom.get_ipv4net args "net");
        reply ok []);
  Xrl_router.add_handler r ~interface:"bgp" ~method_name:"originate_route"
    (fun args reply ->
       originate t (Xrl_atom.get_ipv4net args "net");
       reply ok []);
  Xrl_router.add_handler r ~interface:"bgp" ~method_name:"withdraw_route"
    (fun args reply ->
       withdraw t (Xrl_atom.get_ipv4net args "net");
       reply ok []);
  Xrl_router.add_handler r ~interface:"bgp" ~method_name:"get_route_count"
    (fun _ reply -> reply ok [ Xrl_atom.u32 "count" (route_count t) ]);
  Xrl_router.add_handler r ~interface:"bgp" ~method_name:"get_peer_state"
    (fun args reply ->
       let addr = Xrl_atom.get_ipv4 args "peer" in
       match find_peer t addr with
       | Some peer ->
         reply ok
           [ Xrl_atom.txt "state"
               (Peer_fsm.state_to_string (Peer_fsm.state peer.fsm)) ]
       | None ->
         reply
           (Xrl_error.Command_failed ("no peer " ^ Ipv4.to_string addr))
           []);
  Xrl_router.add_handler r ~interface:"bgp" ~method_name:"list_peers"
    (fun _ reply ->
       let vals =
         Hashtbl.fold
           (fun _ peer acc ->
              Xrl_atom.Txt (Ipv4.to_string peer.cfg.peer_addr) :: acc)
           t.peers []
       in
       reply ok [ Xrl_atom.list "peers" vals ])

(* --- public API --------------------------------------------------------- *)

let create ?families ?profiler ?(send_to_rib = true) ?(nexthop_mode = `Rib)
    ?(bgp_port = 179) ?(inbound_slice = 64) ?(urgent_threshold = 64)
    ?(lane_ordered = true) ?(rib_rebirth_resync = true)
    ?(redump_on_reestablish = true) ?shard_dispatch
    finder loop ~netsim ~local_as ~bgp_id () =
  if inbound_slice < 1 || urgent_threshold < 1 then
    invalid_arg "Bgp_process.create";
  (* A fresh generation starts its metric namespace from zero, so a
     restarted BGP process does not inherit the dead instance's counts. *)
  Telemetry.reset_prefix "bgp.";
  let router = Xrl_router.create ?families finder loop ~class_name:"bgp" () in
  let shard_mirror =
    match shard_dispatch with
    | None -> None
    | Some dispatch ->
      Some (new Bgp_decision.shard_mirror ~name:"decision" ~dispatch ())
  in
  let decision : Bgp_decision.view =
    match shard_mirror with
    | Some m -> (m :> Bgp_decision.view)
    | None ->
      (new Bgp_decision.decision_table ~name:"decision" ()
        :> Bgp_decision.view)
  in
  let t =
    lazy
      (let fanout =
         (* The bulk-lane batch scales with the inbound slice so the
            fanout drains at least as fast as staging refills it, while
            staying bounded per turn. *)
         new Bgp_fanout.fanout_table ~name:"fanout"
           ~batch:(2 * inbound_slice) ~ordered:lane_ordered
           ~peer_info_of:(fun id -> decision#peer_info id)
           loop
       in
       {
         router; loop; netsim; profiler; local_as; bgp_id; bgp_port;
         send_to_rib; nexthop_mode;
         inbound_slice; urgent_threshold; lane_ordered;
         inbound_backlog = 0;
         g_inbound = Telemetry.gauge "bgp.inbound.backlog";
         peers = Hashtbl.create 8; peer_kinds = Hashtbl.create 8;
         next_peer_id = 0;
         decision; shard_mirror; fanout;
         local_ribin = new Bgp_ribin.rib_in ~name:"local" ~peer_id:0 loop;
         listeners = Hashtbl.create 4;
         rib_q = Laneq.create ~ordered:lane_ordered ();
         rib_flush_scheduled = false;
         (* From live Finder state, not assumed true: a process created
            while the RIB is down (both killed, BGP restarted first)
            must hold its queue and treat the RIB's eventual return as
            a rebirth, or nothing ever replays. *)
         rib_up = Finder.live_instances finder "rib" <> [];
         rib_rebirth_resync; redump_on_reestablish;
         redist_policies = [];
         c_resync_replayed = Telemetry.counter "bgp.rib_resync.replayed";
         started = false;
       })
  in
  let t = Lazy.force t in
  (match profiler with
   | Some p ->
     List.iter (Profiler.define p) [ pp_entering; pp_queued_rib; pp_sent_rib ]
   | None -> ());
  t.decision#set_next (Some (t.fanout :> Bgp_table.table));
  t.fanout#set_parent (t.decision :> Bgp_table.table);
  (* Local branch: originated networks, already "resolved". *)
  Bgp_table.plumb t.local_ribin t.decision;
  t.decision#add_parent
    ~info:(Bgp_types.local_peer_info ~local_as ~bgp_id)
    (t.local_ribin :> Bgp_table.table);
  (* RIB branch reads the fanout like any peer — in sharded mode too:
     decision winners come back from the shard pool into the mirror,
     whose diff pushes through the fanout, and from here they reach
     the RIB over the same XRL boundary as ever (the RIB then routes
     them to the owner shard's arbitration stage). *)
  let rib_branch = make_rib_branch t in
  t.fanout#add_reader
    ~info:
      { Bgp_types.peer_id = -1; peer_addr = Ipv4.zero; peer_as = 0;
        kind = Bgp_types.Ebgp; peer_bgp_id = Ipv4.zero }
    rib_branch;
  add_xrl_handlers t;
  watch_rib_lifecycle t finder;
  t

let ensure_listener t local_addr =
  let key = Ipv4.to_int local_addr in
  if not (Hashtbl.mem t.listeners key) then begin
    let listener =
      Netsim.Stream.listen t.netsim ~addr:local_addr ~port:t.bgp_port
        (fun ep ->
           let remote = Netsim.Stream.remote_addr ep in
           match find_peer t remote with
           | Some peer when not peer.removed -> attach_endpoint t peer ep
           | _ ->
             Log.debug (fun m ->
                 m "refusing connection from unconfigured %s"
                   (Ipv4.to_string remote));
             Netsim.Stream.close ep)
    in
    Hashtbl.replace t.listeners key listener
  end

let start_peer t peer =
  if is_dialer peer then dial t peer else Peer_fsm.start_passive peer.fsm

let add_peer t cfg =
  if Hashtbl.mem t.peers (peer_key cfg.peer_addr) then
    invalid_arg
      ("Bgp_process.add_peer: duplicate " ^ Ipv4.to_string cfg.peer_addr);
  let peer = build_peer t cfg in
  Hashtbl.replace t.peers (peer_key cfg.peer_addr) peer;
  if t.started then begin
    ensure_listener t cfg.local_addr;
    start_peer t peer
  end

let start t =
  if not t.started then begin
    t.started <- true;
    Hashtbl.iter (fun _ peer -> ensure_listener t peer.cfg.local_addr) t.peers;
    Hashtbl.iter (fun _ peer -> start_peer t peer) t.peers
  end

let remove_peer t addr =
  match find_peer t addr with
  | None -> ()
  | Some peer ->
    peer.removed <- true;
    (match peer.retry_timer with
     | Some timer -> Eventloop.cancel timer
     | None -> ());
    let state = Peer_fsm.state peer.fsm in
    Peer_fsm.stop peer.fsm;
    (* stop does not fire on_down; clean up the branch ourselves. *)
    if state = Peer_fsm.Established then begin
      t.fanout#remove_reader peer.info.peer_id;
      (match peer.dump_task with
       | Some task -> Eventloop.remove_task task
       | None -> ())
    end;
    clear_inbound t peer;
    peer.ribin#peering_went_down ~slice:peer.cfg.deletion_slice ();
    (* Permanent removal: detach the branch from the decision process.
       The deletion stage's withdrawals still trigger re-evaluation,
       which now simply no longer finds this branch's candidates. *)
    t.decision#remove_parent peer.info.peer_id;
    Hashtbl.remove t.peers (peer_key addr)

let subscribe_rib_redistribution t ~policy =
  (* Remembered so the subscription survives a RIB restart: the RIB's
     subscriber table dies with the instance. *)
  t.redist_policies <- policy :: t.redist_policies;
  send_redist_subscribe t policy

let peer_state t addr = Option.map (fun p -> Peer_fsm.state p.fsm) (find_peer t addr)

let peer_addresses t =
  Hashtbl.fold (fun _ p acc -> p.cfg.peer_addr :: acc) t.peers []
  |> List.sort Ipv4.compare

let established_count t =
  Hashtbl.fold
    (fun _ p acc ->
       if Peer_fsm.state p.fsm = Peer_fsm.Established then acc + 1 else acc)
    t.peers 0

let ribin_count t addr =
  match find_peer t addr with Some p -> p.ribin#route_count | None -> 0

let deletion_stages t addr =
  match find_peer t addr with
  | Some p -> p.ribin#active_deletion_stages
  | None -> 0

let cache_violations t =
  Hashtbl.fold
    (fun _ p acc ->
       match p.out_cache with Some c -> c#violations @ acc | None -> acc)
    t.peers []

let set_import_policies t addr programs =
  match find_peer t addr with
  | None -> false
  | Some peer ->
    let it = peer.ribin#safe_iter in
    peer.import_filter#replace_programs ~loop:t.loop
      ~pull:(fun () -> Option.map snd (Ptree.Safe_iter.next it))
      programs;
    true

(* Fault injection for tests and experiments: cut a session silently,
   so only the hold timer can notice. *)
let sever_session t addr =
  match find_peer t addr with
  | Some ({ endpoint = Some ep; _ }) ->
    Netsim.Stream.sever ep;
    true
  | _ -> false

let fanout_queue_length t = t.fanout#queue_length
let fanout_peak_queue_length t = t.fanout#peak_queue_length

let shutdown t =
  Hashtbl.iter
    (fun _ peer ->
       peer.removed <- true;
       (match peer.retry_timer with
        | Some timer -> Eventloop.cancel timer
        | None -> ());
       (match peer.dump_task with
        | Some task ->
          Eventloop.remove_task task;
          peer.dump_task <- None
        | None -> ());
       clear_inbound t peer;
       Peer_fsm.stop peer.fsm)
    t.peers;
  Hashtbl.iter (fun _ l -> Netsim.Stream.unlisten l) t.listeners;
  Hashtbl.reset t.listeners;
  Hashtbl.reset t.peers;
  Xrl_router.shutdown t.router
