(* Filter-bank stages (paper §5.1, Figures 4–5): run the policy stack
   language over routes flowing through a peer branch.

   A bank holds an ordered list of compiled policy programs. For each
   route: Reject drops it; Accept keeps it (with modifications) and
   stops; Default keeps modifications and falls through to the next
   program. Deletes are filtered identically, so a delete maps to the
   same transformed route as its original add — provided the programs
   haven't changed in between, which is why replacing the bank's
   programs triggers a background re-filter pass that reconciles the
   downstream view (old programs vs new programs, route by route).

   Attributes exposed to the policy VM: network (ro), nexthop (rw),
   med (rw), localpref (rw), origin (rw: 0 igp, 1 egp, 2 incomplete),
   aspath_len (ro), first_asn (ro), peer_as (ro), aspath_prepend
   (wo: prepend the local AS n times), community_add (wo), and
   community_<n> (ro: membership test). *)

let apply_programs ~local_as ~peer_as (programs : Policy.program list)
    (r : Bgp_types.route) : Bgp_types.route option =
  let a = r.Bgp_types.attrs in
  let nexthop = ref a.Bgp_types.nexthop in
  let med = ref a.med in
  let localpref = ref a.localpref in
  let origin = ref a.origin in
  let aspath = ref a.aspath in
  let communities = ref a.communities in
  let ctx =
    {
      Policy.get_attr =
        (fun name ->
           match name with
           | "network" -> Some (Policy.Net r.net)
           | "nexthop" -> Some (Policy.Addr !nexthop)
           | "med" -> Some (Policy.Int (Option.value !med ~default:0))
           | "localpref" ->
             Some (Policy.Int (Option.value !localpref ~default:100))
           | "origin" -> Some (Policy.Int (Bgp_types.origin_rank !origin))
           | "aspath_len" -> Some (Policy.Int (Aspath.length !aspath))
           | "first_asn" ->
             Some (Policy.Int (Option.value (Aspath.first_as !aspath) ~default:0))
           | "peer_as" -> Some (Policy.Int peer_as)
           | name ->
             (match String.length name > 10
                    && String.sub name 0 10 = "community_" with
              | true ->
                (match int_of_string_opt (String.sub name 10 (String.length name - 10)) with
                 | Some c -> Some (Policy.Bool (List.mem c !communities))
                 | None -> None)
              | false -> None));
      set_attr =
        (fun name v ->
           match name, v with
           | "nexthop", Policy.Addr x ->
             nexthop := x;
             Ok ()
           | "med", Policy.Int x ->
             med := Some x;
             Ok ()
           | "localpref", Policy.Int x ->
             localpref := Some x;
             Ok ()
           | "origin", Policy.Int x when x >= 0 && x <= 2 ->
             origin :=
               (if x = 0 then Bgp_types.IGP
                else if x = 1 then Bgp_types.EGP
                else Bgp_types.INCOMPLETE);
             Ok ()
           | "aspath_prepend", Policy.Int n when n >= 0 && n <= 16 ->
             aspath := Aspath.prepend_n local_as n !aspath;
             Ok ()
           | "community_add", Policy.Int c ->
             if not (List.mem c !communities) then
               communities := !communities @ [ c ];
             Ok ()
           | ("network" | "aspath_len" | "first_asn" | "peer_as"), _ ->
             Error "read-only attribute"
           | _ -> Error "unknown or mistyped attribute");
    }
  in
  let rebuild () =
    { r with
      Bgp_types.attrs =
        { a with
          Bgp_types.nexthop = !nexthop; med = !med; localpref = !localpref;
          origin = !origin; aspath = !aspath; communities = !communities } }
  in
  let rec run = function
    | [] -> Some (rebuild ())
    | p :: rest ->
      (match Policy.eval p ctx with
       | Ok Policy.Reject -> None
       | Ok Policy.Accept -> Some (rebuild ())
       | Ok Policy.Default -> run rest
       | Error _ ->
         (* A faulting filter fails closed for this route. *)
         None)
  in
  run programs

class filter_table ~name ~(parent : Bgp_table.table) ~(local_as : int)
    ~(peer_as : int) ?(programs : Policy.program list = []) () =
  object (self)
    inherit Bgp_table.base name
    val h_add = Telemetry.histogram ("bgp." ^ name ^ ".add_us")
    val h_del = Telemetry.histogram ("bgp." ^ name ^ ".delete_us")
    val mutable programs = programs
    val mutable refilter_task : Eventloop.task option = None

    method programs = programs

    method private apply r = apply_programs ~local_as ~peer_as programs r

    method add_route r =
      Telemetry.time h_add @@ fun () ->
      match self#apply r with
      | Some r' -> self#push_add r'
      | None -> ()

    method delete_route r =
      Telemetry.time h_del @@ fun () ->
      match self#apply r with
      | Some r' -> self#push_delete r'
      | None -> ()

    method lookup_route net =
      match parent#lookup_route net with
      | Some r -> self#apply r
      | None -> None

    method refiltering = refilter_task <> None

    (* Replace the bank's programs and reconcile downstream in the
       background (paper §5.1.2: "when routing policy filters are
       changed by the operator and many routes need to be re-filtered
       and reevaluated" — another dynamic background job). [pull]
       yields original upstream routes one at a time. *)
    method replace_programs ~(loop : Eventloop.t) ?(slice = 100)
        ?(on_complete = fun () -> ())
        ~(pull : unit -> Bgp_types.route option)
        (new_programs : Policy.program list) =
      let old_programs = programs in
      programs <- new_programs;
      let one () =
        match pull () with
        | None ->
          refilter_task <- None;
          on_complete ();
          `Done
        | Some r ->
          let old_out = apply_programs ~local_as ~peer_as old_programs r in
          let new_out = self#apply r in
          (match old_out, new_out with
           | None, None -> ()
           | Some o, Some n when Bgp_types.route_equal o n -> ()
           | Some o, Some n ->
             self#push_delete o;
             self#push_add n
           | Some o, None -> self#push_delete o
           | None, Some n -> self#push_add n);
          `Continue
      in
      (match refilter_task with
       | Some t -> Eventloop.remove_task t
       | None -> ());
      refilter_task <- Some (Eventloop.add_task loop ~weight:slice one)
  end
