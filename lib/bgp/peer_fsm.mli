(** BGP peer session state machine (RFC 4271 §8, simplified but with
    the standard state set: Idle, Connect, Active, OpenSent,
    OpenConfirm, Established).

    The FSM is transport-agnostic: the owner supplies send/close
    functions when a transport comes up and feeds it raw received
    bytes; the FSM runs OPEN negotiation, keepalive and hold timers,
    and reports established/route/down events through callbacks. The
    owner (Bgp_process) handles TCP connection management — who dials
    whom — and reconnection policy. *)

type state = Idle | Connect | Active | OpenSent | OpenConfirm | Established

val state_to_string : state -> string

type config = {
  local_as : int;
  bgp_id : Ipv4.t;
  peer_as : int;         (** Expected remote AS; mismatch refuses the session. *)
  hold_time : float;     (** Proposed hold time, seconds. 0 disables. *)
}

type transport = {
  tr_send : string -> unit;
  tr_close : unit -> unit;
}

type callbacks = {
  on_established : unit -> unit;
  on_update : Bgp_packet.msg -> unit;
  (** Always an [Update]; delivered only in Established. *)
  on_down : string -> unit;
  (** Session fell back to Idle; the reason is diagnostic. The owner
      decides when to redial. *)
}

type t

val create : Eventloop.t -> config -> callbacks -> t

val state : t -> state

val start_active : t -> unit
(** Owner initiated a TCP connect: Idle → Connect. *)

val start_passive : t -> unit
(** Owner is waiting for an inbound connection: Idle → Active. *)

val transport_up : t -> transport -> unit
(** TCP came up (either direction): sends OPEN, moves to OpenSent. *)

val transport_failed : t -> unit
(** The connect attempt failed; back to Idle (owner schedules retry). *)

val recv : t -> string -> unit
(** Feed raw bytes from the transport. *)

val transport_closed : t -> unit
(** The peer closed the connection. *)

val send_update : t -> Bgp_packet.msg -> bool
(** Transmit an UPDATE if Established; returns false otherwise. *)

val stop : t -> unit
(** Administrative stop: send CEASE if possible, close, go Idle.
    No [on_down] callback fires (the owner asked). *)

val negotiated_hold_time : t -> float
(** Min of proposed and received hold times; 0 when not established. *)

val updates_received : t -> int
val updates_sent : t -> int
